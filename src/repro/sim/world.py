"""Structure-of-arrays world state shared by mobility, radio, and channel.

:class:`WorldState` mirrors the per-node state the hot loops read most —
the active trajectory leg of every :class:`~repro.mobility.waypoint.WaypointMobility`
and the power state of every :class:`~repro.net.radio.Radio` — into flat
NumPy blocks indexed by node id.  The per-node objects remain the owners
of their state; they *write through* to the mirror on every transition
(leg advancement, radio state change), so readers get bulk views without
any per-query object traffic:

- :meth:`positions_at` interpolates the whole team's positions in one
  vectorized pass, and
- :attr:`awake` / :attr:`transmitting` answer the channel's eligibility
  filter as boolean masks.

Bit-exactness contract (the ``soa_state`` kernel of
:class:`~repro.kernels.KernelConfig`):

- Leg interpolation uses the elementwise float64 expression
  ``start + (dest - start) * ((t - depart) / (arrive - depart))`` — the
  *same* IEEE-754 operations :meth:`~repro.mobility.waypoint.Leg.position_at`
  performs scalar-wise, so every coordinate matches bit for bit (a
  property test pins this).  Clamp masks reproduce the scalar
  ``t <= depart`` / ``t >= arrive`` branches exactly.
- Stale rows (legs expired at the query time) are advanced through the
  owning mobility's own ``current_leg``, in ascending node order, so each
  node's RNG stream consumes exactly the draws its trajectory dictates.
  Per-node streams are independent, and the number of legs a trajectory
  has by time ``t`` is determined by the trajectory alone — not by who
  queried when — so advancing rows here instead of lazily is invisible
  to the science payload.
- Anything downstream that needs a *distance* still computes it with
  scalar ``math.hypot`` (``numpy.hypot`` is not bit-identical to it).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np


class WorldState:
    """Shared SoA mirror of per-node kinematic and radio state.

    Rows are node ids: the team wires node ``i`` to row ``i``.  All
    arrays are owned by this object; writers go through :meth:`set_leg`
    and the radio's bound setters so the cached position snapshot can be
    invalidated.
    """

    def __init__(self, n_nodes: int) -> None:
        n = int(n_nodes)
        if n < 1:
            raise ValueError("n_nodes must be >= 1, got %r" % n_nodes)
        self.n = n
        self._mobility: List[Optional[object]] = [None] * n
        # Active-leg parameters, written through by WaypointMobility.
        self._start_x = np.zeros(n)
        self._start_y = np.zeros(n)
        self._dest_x = np.zeros(n)
        self._dest_y = np.zeros(n)
        self._depart = np.zeros(n)
        self._arrive = np.full(n, math.inf)
        self._rest_until = np.full(n, math.inf)
        # Radio power-state mirror, written through by Radio._enter.
        self.awake = np.ones(n, dtype=bool)
        self.transmitting = np.zeros(n, dtype=bool)
        #: Set when any bound radio arms a receive-fault gate; the
        #: channel then keeps to the scalar eligibility path, which
        #: consults the gate per receiver.
        self.has_receive_faults = False
        # Cached position snapshot (plain-float lists, exact via tolist).
        self._pos_time: Optional[float] = None
        self._pos_x: List[float] = []
        self._pos_y: List[float] = []

    def bind_mobility(self, row: int, mobility: object) -> None:
        """Attach the mobility model that owns ``row``'s trajectory."""
        self._mobility[row] = mobility

    def set_leg(
        self,
        row: int,
        start_x: float,
        start_y: float,
        dest_x: float,
        dest_y: float,
        depart_time: float,
        arrive_time: float,
        rest_until: float,
    ) -> None:
        """Write a node's newly active leg through to the mirror."""
        self._start_x[row] = start_x
        self._start_y[row] = start_y
        self._dest_x[row] = dest_x
        self._dest_y[row] = dest_y
        self._depart[row] = depart_time
        self._arrive[row] = arrive_time
        self._rest_until[row] = rest_until
        self._pos_time = None

    def positions_at(self, t: float) -> Tuple[Sequence[float], Sequence[float]]:
        """All node positions at simulation time ``t``, as float lists.

        ``t`` must be non-decreasing across calls interleaved with other
        position queries (simulation time is), because expired legs are
        advanced through their owners.  The snapshot is cached per
        distinct ``t``, so the several subsystems sampling the same
        instant pay for one pass.
        """
        if t != self._pos_time:
            self._refresh(t)
        return self._pos_x, self._pos_y

    def _refresh(self, t: float) -> None:
        stale = np.flatnonzero(self._rest_until <= t)
        for row in stale.tolist():
            # current_leg advances the trajectory and writes the new leg
            # back through set_leg.
            self._mobility[row].current_leg(t)
        depart = self._depart
        arrive = self._arrive
        start_x = self._start_x
        start_y = self._start_y
        frac = (t - depart) / (arrive - depart)
        x = start_x + (self._dest_x - start_x) * frac
        y = start_y + (self._dest_y - start_y) * frac
        # Reproduce Leg.position_at's clamp branches exactly: at or past
        # arrival the position IS dest; at or before departure it IS
        # start (no interpolation arithmetic involved).
        arrived = t >= arrive
        waiting = t <= depart
        np.copyto(x, self._dest_x, where=arrived)
        np.copyto(y, self._dest_y, where=arrived)
        np.copyto(x, start_x, where=waiting)
        np.copyto(y, start_y, where=waiting)
        self._pos_x = x.tolist()
        self._pos_y = y.tolist()
        self._pos_time = t
