"""Discrete-event simulation kernel.

This package replaces the GloMoSim substrate the paper runs on.  It provides:

- :class:`~repro.sim.engine.Simulator` — a deterministic event-driven
  scheduler with a floating-point clock in seconds,
- :class:`~repro.sim.engine.Event` handles that can be cancelled or
  rescheduled,
- :class:`~repro.sim.timers.PeriodicTimer` — the building block for beacon
  periods, SYNC periods and metric sampling,
- :class:`~repro.sim.rng.RandomStreams` — named, independently seeded random
  streams so that e.g. mobility noise and RF shadowing are decoupled and
  every run is exactly reproducible from one master seed,
- :class:`~repro.sim.trace.TraceLog` — structured event tracing for tests and
  debugging.
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.rng import RandomStreams
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "PeriodicTimer",
    "RandomStreams",
    "TraceLog",
    "TraceRecord",
]
