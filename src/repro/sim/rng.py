"""Named, independently seeded random streams.

Every stochastic component in the reproduction (mobility waypoints, odometry
noise, RF shadowing, MAC backoff, ...) draws from its own named stream.  The
streams are derived from one master seed with :class:`numpy.random.SeedSequence`
so that:

- two runs with the same master seed are bit-identical, and
- changing how often one component draws (e.g. a different beacon period)
  does not perturb any other component's noise sequence.

This mirrors GloMoSim's per-module RNG discipline and is essential for the
paper's controlled parameter sweeps: Figure 9's four beacon periods must see
the same robot trajectories.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of named :class:`numpy.random.Generator` streams.

    Example:
        >>> streams = RandomStreams(master_seed=7)
        >>> mob = streams.get('mobility')
        >>> phy = streams.get('phy')
        >>> mob is streams.get('mobility')
        True
        >>> # same name + same master seed => same sequence
        >>> again = RandomStreams(master_seed=7).get('mobility')
        >>> float(mob.random()) == float(again.random())
        True
    """

    def __init__(self, master_seed: int = 0) -> None:
        if not isinstance(master_seed, int):
            raise TypeError(
                "master_seed must be an int, got %r" % type(master_seed)
            )
        self._master_seed = master_seed
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream seed mixes the master seed with a stable hash of the
        name, so streams are independent of creation order.
        """
        stream = self._streams.get(name)
        if stream is None:
            name_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence([self._master_seed, name_key])
            stream = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """Return a per-entity stream, e.g. ``spawn('odometry', robot_id)``."""
        return self.get("%s/%d" % (name, index))

    def __repr__(self) -> str:
        return "RandomStreams(master_seed=%d, streams=%d)" % (
            self._master_seed,
            len(self._streams),
        )
