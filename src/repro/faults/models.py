"""Runtime fault models: the stochastic machinery behind each spec.

Each model owns its own seeded RNG stream (handed in by the
:class:`~repro.faults.injector.FaultInjector`), so adding or removing a
fault never perturbs the draws of any other component — the property the
zero-intensity bit-identity guarantee rests on.

All models are queried with monotonically non-decreasing simulation
times, which lets the time-driven ones (burst state, brownout windows)
advance lazily: RNG consumption depends only on simulated time, not on
how often the model is asked.
"""

from __future__ import annotations

import struct
from dataclasses import is_dataclass, replace
from typing import Optional

import numpy as np

from repro.faults.spec import (
    BrownoutSpec,
    BurstInterferenceSpec,
    RssiBiasSpec,
)


class GilbertElliottChannel:
    """Two-state Markov burst-interference process (channel-wide).

    The chain alternates GOOD/BAD with exponential sojourns; state is
    advanced lazily as time is queried.  While BAD, each offered frame is
    independently lost with ``spec.bad_loss_prob`` and survivors decode
    against a noise floor elevated by ``spec.bad_noise_db``.
    """

    def __init__(
        self, spec: BurstInterferenceSpec, rng: np.random.Generator
    ) -> None:
        self._spec = spec
        self._rng = rng
        self._good = True
        self._until = float(rng.exponential(spec.mean_good_s))
        self.bad_time_entered = 0

    def in_bad_state(self, now: float) -> bool:
        """Advance the chain to ``now`` and report the state there."""
        while now >= self._until:
            self._good = not self._good
            if not self._good:
                self.bad_time_entered += 1
            mean = (
                self._spec.mean_good_s
                if self._good
                else self._spec.mean_bad_s
            )
            self._until += float(self._rng.exponential(mean))
        return not self._good

    def offer(self, now: float) -> Optional[float]:
        """Per-frame verdict: ``None`` = frame jammed, else the decode
        penalty in dB (0.0 while GOOD)."""
        if not self.in_bad_state(now):
            return 0.0
        if (
            self._spec.bad_loss_prob > 0.0
            and self._rng.random() < self._spec.bad_loss_prob
        ):
            return None
        return self._spec.bad_noise_db


class RadioCalibrationFault:
    """One receiver's RSSI measurement bias and slow drift."""

    def __init__(self, spec: RssiBiasSpec, rng: np.random.Generator) -> None:
        self.affected = bool(rng.random() < spec.fraction_affected)
        self._bias_db = (
            float(rng.normal(0.0, spec.bias_std_db))
            if spec.bias_std_db > 0.0
            else 0.0
        )
        sign = 1.0 if rng.random() < 0.5 else -1.0
        self._drift_db_per_s = sign * spec.drift_db_per_min / 60.0

    def reported_rssi(self, now: float, rssi_dbm: float) -> float:
        if not self.affected:
            return rssi_dbm
        return rssi_dbm + self._bias_db + self._drift_db_per_s * now


class BrownoutGenerator:
    """One radio's deaf windows: Poisson arrivals, exponential durations.

    Windows are materialized lazily in time order, so :meth:`is_deaf`
    must be queried with non-decreasing times (simulation time is).
    """

    def __init__(self, spec: BrownoutSpec, rng: np.random.Generator) -> None:
        self._rng = rng
        self._arrival_mean_s = 3600.0 / spec.rate_per_hour
        self._duration_mean_s = spec.mean_duration_s
        self.affected = bool(rng.random() < spec.fraction_affected)
        self._window_start = float(rng.exponential(self._arrival_mean_s))
        self._window_end = self._window_start + float(
            rng.exponential(self._duration_mean_s)
        )
        self.windows_entered = 0
        self._counted_current = False

    def is_deaf(self, now: float) -> bool:
        if not self.affected:
            return False
        while now >= self._window_end:
            self._window_start = self._window_end + float(
                self._rng.exponential(self._arrival_mean_s)
            )
            self._window_end = self._window_start + float(
                self._rng.exponential(self._duration_mean_s)
            )
            self._counted_current = False
        if now >= self._window_start:
            if not self._counted_current:
                self.windows_entered += 1
                self._counted_current = True
            return True
        return False


#: Bit positions eligible for a flip: bit 51 is the top mantissa bit of
#: an IEEE-754 double, bit 52 the lowest exponent bit.  Flipping one
#: displaces the value by 25-100% of its magnitude — wrong enough to
#: genuinely mislead the
#: Bayesian filter, finite and plausible-looking enough that nothing
#: short of a checksum catches it (high exponent flips would produce
#: astronomically wrong values the uniform floor in the PDF table
#: already shrugs off, and low-mantissa flips would be
#: indistinguishable from ordinary measurement noise).
_FLIP_BIT_LOW = 51
_FLIP_BIT_HIGH = 52


def flip_float_bit(value: float, bit: int) -> float:
    """Flip one bit of a double's IEEE-754 representation."""
    (bits,) = struct.unpack("<Q", struct.pack("<d", value))
    (flipped,) = struct.unpack("<d", struct.pack("<Q", bits ^ (1 << bit)))
    return flipped


class PayloadCorrupter:
    """Damages one float field of a dataclass payload via a bit flip."""

    def __init__(self, corrupt_prob: float, rng: np.random.Generator) -> None:
        self._prob = corrupt_prob
        self._rng = rng

    def maybe_corrupt(self, payload: object) -> Optional[object]:
        """Return a damaged copy of ``payload``, or ``None`` to leave it.

        Only dataclass payloads with at least one float field can be
        damaged (beacons and SYNCs are; opaque payloads pass through).
        """
        if self._rng.random() >= self._prob:
            return None
        if not is_dataclass(payload) or isinstance(payload, type):
            return None
        float_fields = [
            name
            for name, value in vars(payload).items()
            if isinstance(value, float)
        ]
        if not float_fields:
            return None
        field_name = float_fields[
            int(self._rng.integers(0, len(float_fields)))
        ]
        bit = int(self._rng.integers(_FLIP_BIT_LOW, _FLIP_BIT_HIGH + 1))
        damaged = flip_float_bit(getattr(payload, field_name), bit)
        return replace(payload, **{field_name: damaged})
