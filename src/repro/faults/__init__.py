"""Composable fault injection and graceful-degradation defenses.

The package splits cleanly into three layers:

- :mod:`repro.faults.spec` — frozen, hashable *descriptions* of faults
  (:class:`FaultPlan`) and defenses (:class:`DefenseConfig`) that ride
  inside :class:`~repro.core.config.CoCoAConfig`;
- :mod:`repro.faults.models` — the seeded stochastic processes behind
  each fault (Gilbert-Elliott bursts, calibration drift, brownout
  windows, bit-flip corruption);
- :mod:`repro.faults.injector` — the :class:`FaultInjector` the channel
  and team consult at runtime.

A default-constructed :class:`FaultPlan` is a no-op: the team skips the
injector entirely and the simulation is bit-identical to a build without
this package.
"""

from repro.faults.injector import FaultInjector
from repro.faults.spec import (
    BrownoutSpec,
    BurstInterferenceSpec,
    DefenseConfig,
    FaultPlan,
    PayloadCorruptionSpec,
    RssiBiasSpec,
)

__all__ = [
    "BrownoutSpec",
    "BurstInterferenceSpec",
    "DefenseConfig",
    "FaultInjector",
    "FaultPlan",
    "PayloadCorruptionSpec",
    "RssiBiasSpec",
]
