"""The fault injector: wires fault models into the net stack.

One :class:`FaultInjector` per team interprets a
:class:`~repro.faults.spec.FaultPlan`.  The
:class:`~repro.net.channel.BroadcastChannel` consults it at its two
decision points (frame offer and frame delivery) and the team attaches
its per-radio brownout gates at build time.  When the plan is a no-op
the team never constructs an injector at all, so the unfaulted code path
is untouched.

RNG discipline: the channel-wide burst process draws from the
``fault-burst`` stream; every node-scoped model draws from its own
``fault-*/<node_id>`` stream, created lazily on first touch.  All of
these are new named streams, so enabling faults never perturbs mobility,
PHY, MAC or odometry draws — and disabling them reproduces the baseline
bit-identically.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.faults.models import (
    BrownoutGenerator,
    GilbertElliottChannel,
    PayloadCorrupter,
    RadioCalibrationFault,
)
from repro.faults.spec import FaultPlan
from repro.net.packet import Packet
from repro.net.radio import Radio
from repro.sim.rng import RandomStreams


class FaultInjector:
    """Runtime interpreter of a :class:`FaultPlan`.

    Args:
        plan: the fault configuration.
        streams: the team's named RNG streams (fault models spawn their
            own sub-streams from it).
        crc_check: the CRC defense toggle — with it on, corrupted frames
            are dropped at the channel instead of delivered.
    """

    def __init__(
        self,
        plan: FaultPlan,
        streams: RandomStreams,
        crc_check: bool = False,
    ) -> None:
        self.plan = plan
        self.crc_check = crc_check
        self._streams = streams
        self._burst: Optional[GilbertElliottChannel] = None
        if plan.burst.enabled:
            self._burst = GilbertElliottChannel(
                plan.burst, streams.get("fault-burst")
            )
        self._calibrations: Dict[int, RadioCalibrationFault] = {}
        self._corrupters: Dict[int, PayloadCorrupter] = {}
        self._brownouts: Dict[int, BrownoutGenerator] = {}

    # -- per-node model factories (lazy, order-independent seeding) ---------

    def _calibration_for(self, node_id: int) -> RadioCalibrationFault:
        fault = self._calibrations.get(node_id)
        if fault is None:
            fault = RadioCalibrationFault(
                self.plan.rssi_bias,
                self._streams.spawn("fault-bias", node_id),
            )
            self._calibrations[node_id] = fault
        return fault

    def _corrupter_for(self, node_id: int) -> PayloadCorrupter:
        corrupter = self._corrupters.get(node_id)
        if corrupter is None:
            corrupter = PayloadCorrupter(
                self.plan.corruption.corrupt_prob,
                self._streams.spawn("fault-corrupt", node_id),
            )
            self._corrupters[node_id] = corrupter
        return corrupter

    # -- wiring -------------------------------------------------------------

    def attach_radio(self, node_id: int, radio: Radio) -> None:
        """Install this node's brownout gate on its radio (if targeted)."""
        if not (self.plan.brownout.enabled and self.plan.targets(node_id)):
            return
        generator = BrownoutGenerator(
            self.plan.brownout, self._streams.spawn("fault-brownout", node_id)
        )
        self._brownouts[node_id] = generator
        radio.set_receive_fault(generator.is_deaf)

    # -- channel hooks ------------------------------------------------------

    def offer_rssi(
        self, now: float, src_id: int, dst_id: int, rssi_dbm: float
    ) -> Optional[float]:
        """Burst interference verdict for one offered frame.

        Returns the *effective* RSSI the receiver decodes against
        (``rssi`` minus any noise-floor elevation), or ``None`` when the
        frame is jammed outright.
        """
        if self._burst is None:
            return rssi_dbm
        penalty_db = self._burst.offer(now)
        if penalty_db is None:
            return None
        return rssi_dbm - penalty_db

    def reported_rssi(
        self, now: float, src_id: int, rssi_dbm: float
    ) -> float:
        """The RSSI a receiver measures for a frame from a (possibly
        miscalibrated) transmitter.

        The fault is transmit-side — a power amplifier whose output
        drifted from the value the offline calibration assumed — so it
        is keyed by the *sender*: every receiver in the team sees the
        same systematic offset on that sender's frames, which is exactly
        the signature the estimator's residual quarantine looks for.
        """
        if not (
            self.plan.rssi_bias.enabled and self.plan.targets(src_id)
        ):
            return rssi_dbm
        return self._calibration_for(src_id).reported_rssi(now, rssi_dbm)

    def maybe_corrupt(
        self, now: float, dst_id: int, packet: Packet
    ) -> Optional[Packet]:
        """Return a payload-damaged copy of ``packet``, or ``None``.

        Only beacon packets are eligible: the modelled fault is silent
        corruption of the localization-critical payload in the receive
        path, not channel-wide bit errors (the PHY loss models cover
        those).  The damaged copy keeps the original checksum, so
        ``crc_ok`` is False on it — exactly what a real CRC over a
        damaged payload looks like.
        """
        from repro.core.beaconing import BEACON_KIND  # circular at top level

        if not (
            self.plan.corruption.enabled
            and self.plan.targets(dst_id)
            and packet.kind == BEACON_KIND
        ):
            return None
        damaged = self._corrupter_for(dst_id).maybe_corrupt(packet.payload)
        if damaged is None:
            return None
        return packet.damaged_copy(damaged)

    # -- diagnostics --------------------------------------------------------

    @property
    def burst_episodes(self) -> int:
        """BAD-state episodes entered so far (0 without burst faults)."""
        return 0 if self._burst is None else self._burst.bad_time_entered

    def brownout_windows(self) -> int:
        """Deaf windows entered across all attached radios."""
        return sum(g.windows_entered for g in self._brownouts.values())
