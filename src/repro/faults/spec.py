"""Declarative fault and defense specifications.

The specs below are pure data: frozen dataclasses that travel inside
:class:`~repro.core.config.CoCoAConfig`, hash into the orchestrator's
content digest, and carry no runtime state.  The runtime machinery that
interprets them lives in :mod:`repro.faults.models` and
:mod:`repro.faults.injector`.

Every spec defaults to *disabled*: a default-constructed
:class:`FaultPlan` is a provable no-op (``is_noop()`` is True and the
team never constructs an injector), so baseline runs execute exactly the
unfaulted code path and stay bit-identical to older revisions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)


@dataclass(frozen=True)
class BurstInterferenceSpec:
    """Gilbert-Elliott burst interference on the shared channel.

    A two-state continuous-time Markov chain alternates between a GOOD
    state (the plain lognormal channel) and a BAD state in which each
    frame is independently lost with ``bad_loss_prob`` and the effective
    decode margin of surviving frames drops by ``bad_noise_db`` (an
    elevated noise floor).  Sojourn times are exponential.

    Attributes:
        mean_good_s: mean sojourn in the GOOD state.
        mean_bad_s: mean sojourn in the BAD state.
        bad_loss_prob: per-frame loss probability while BAD.
        bad_noise_db: noise-floor elevation while BAD (reduces the decode
            margin; the *measured* RSSI of delivered frames is unchanged).
    """

    mean_good_s: float = 60.0
    mean_bad_s: float = 5.0
    bad_loss_prob: float = 0.0
    bad_noise_db: float = 0.0

    def __post_init__(self) -> None:
        check_positive("mean_good_s", self.mean_good_s)
        check_positive("mean_bad_s", self.mean_bad_s)
        check_probability("bad_loss_prob", self.bad_loss_prob)
        check_non_negative("bad_noise_db", self.bad_noise_db)

    @property
    def enabled(self) -> bool:
        return self.bad_loss_prob > 0.0 or self.bad_noise_db > 0.0

    def scaled(self, intensity: float) -> "BurstInterferenceSpec":
        return replace(
            self,
            bad_loss_prob=min(self.bad_loss_prob * intensity, 1.0),
            bad_noise_db=self.bad_noise_db * intensity,
        )


@dataclass(frozen=True)
class RssiBiasSpec:
    """Per-radio transmit-power calibration bias and slow drift.

    Violates the PDF-table assumption that every radio transmits at the
    power the calibration campaign measured: frames from an affected
    transmitter are measured at ``rssi + bias + sign * drift * minutes``
    by every receiver, where ``bias`` is a one-time Gaussian draw and
    the drift ramps linearly with a random sign.  Only the *measured*
    RSSI is biased; frame decodability depends on the modelled signal
    power and is unaffected.  Because the offset is systematic per
    sender, a miscalibrated anchor misleads the whole team — and is
    detectable by the estimator's fix-residual quarantine.

    Attributes:
        bias_std_db: sigma of the fixed per-radio calibration offset.
        drift_db_per_min: magnitude of the slow linear drift.
        fraction_affected: probability that a given radio is miscalibrated.
    """

    bias_std_db: float = 0.0
    drift_db_per_min: float = 0.0
    fraction_affected: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("bias_std_db", self.bias_std_db)
        check_non_negative("drift_db_per_min", self.drift_db_per_min)
        check_probability("fraction_affected", self.fraction_affected)

    @property
    def enabled(self) -> bool:
        return self.fraction_affected > 0.0 and (
            self.bias_std_db > 0.0 or self.drift_db_per_min > 0.0
        )

    def scaled(self, intensity: float) -> "RssiBiasSpec":
        return replace(
            self,
            bias_std_db=self.bias_std_db * intensity,
            drift_db_per_min=self.drift_db_per_min * intensity,
        )


@dataclass(frozen=True)
class PayloadCorruptionSpec:
    """Receiver-side beacon payload corruption.

    With probability ``corrupt_prob`` a delivered frame's payload
    coordinates are damaged by an IEEE-754 bit flip.  With the CRC
    defense enabled the damaged frame is dropped at the channel; with it
    disabled the wrong coordinates reach the estimator.
    """

    corrupt_prob: float = 0.0

    def __post_init__(self) -> None:
        check_probability("corrupt_prob", self.corrupt_prob)

    @property
    def enabled(self) -> bool:
        return self.corrupt_prob > 0.0

    def scaled(self, intensity: float) -> "PayloadCorruptionSpec":
        return replace(
            self, corrupt_prob=min(self.corrupt_prob * intensity, 1.0)
        )


@dataclass(frozen=True)
class BrownoutSpec:
    """Transient radio brownouts: the receiver goes deaf for a window.

    Distinct from ``power_off``: the node keeps running its schedule and
    keeps transmitting — it simply hears nothing while the brownout
    lasts, and neither it nor the team is told.  Brownout windows arrive
    as a Poisson process with exponential durations.

    Attributes:
        rate_per_hour: mean brownout arrivals per hour per affected node.
        mean_duration_s: mean deaf-window length.
        fraction_affected: probability that a given node's radio browns
            out at all.
    """

    rate_per_hour: float = 0.0
    mean_duration_s: float = 10.0
    fraction_affected: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("rate_per_hour", self.rate_per_hour)
        check_positive("mean_duration_s", self.mean_duration_s)
        check_probability("fraction_affected", self.fraction_affected)

    @property
    def enabled(self) -> bool:
        return self.rate_per_hour > 0.0 and self.fraction_affected > 0.0

    def scaled(self, intensity: float) -> "BrownoutSpec":
        return replace(self, rate_per_hour=self.rate_per_hour * intensity)


@dataclass(frozen=True)
class FaultPlan:
    """The full fault configuration of a scenario.

    Attributes:
        burst: channel-wide burst interference.
        rssi_bias: per-radio calibration bias/drift.
        corruption: payload corruption.
        brownout: transient receiver deafness.
        node_ids: restrict node-scoped faults (bias, corruption,
            brownout) to these ids; ``None`` means every node is a
            candidate (the per-spec ``fraction_affected`` still applies).
    """

    burst: BurstInterferenceSpec = BurstInterferenceSpec()
    rssi_bias: RssiBiasSpec = RssiBiasSpec()
    corruption: PayloadCorruptionSpec = PayloadCorruptionSpec()
    brownout: BrownoutSpec = BrownoutSpec()
    node_ids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.node_ids is not None:
            object.__setattr__(
                self, "node_ids", tuple(sorted(set(self.node_ids)))
            )
            for node_id in self.node_ids:
                if node_id < 0:
                    raise ValueError(
                        "node id must be non-negative, got %r" % node_id
                    )

    def is_noop(self) -> bool:
        """True when no fault model can ever fire."""
        return not (
            self.burst.enabled
            or self.rssi_bias.enabled
            or self.corruption.enabled
            or self.brownout.enabled
        )

    def scaled(self, intensity: float) -> "FaultPlan":
        """Scale every fault magnitude by ``intensity`` (0 = no-op)."""
        check_non_negative("intensity", intensity)
        return replace(
            self,
            burst=self.burst.scaled(intensity),
            rssi_bias=self.rssi_bias.scaled(intensity),
            corruption=self.corruption.scaled(intensity),
            brownout=self.brownout.scaled(intensity),
        )

    def targets(self, node_id: int) -> bool:
        """May node-scoped faults touch this node at all?"""
        return self.node_ids is None or node_id in self.node_ids


@dataclass(frozen=True)
class DefenseConfig:
    """Graceful-degradation defenses; all default off.

    Attributes:
        crc_check: verify payload checksums at the channel and drop
            damaged frames instead of delivering wrong coordinates.
        beacon_gate_sigma: if > 0, the estimator rejects beacons whose
            claimed position is geometrically inconsistent with the
            current estimate by more than this many PDF-table sigmas
            (plus the last fix spread and ``beacon_gate_slack_m``).
        beacon_gate_slack_m: additive slack of the beacon gate, covering
            robot motion since the last fix.
        watchdog: detect posterior degeneracy (non-normalizable mass or
            entropy collapse after constraint annihilation) at window
            close and reset to the prior instead of adopting a junk fix.
        anchor_expiry_s: if > 0, anchors that repeatedly disagree with
            the estimator (gated beacons, large fix residuals) are
            quarantined, and their suspicion decays with this time
            constant, so a drifted anchor's influence expires instead
            of persisting — and a recovered anchor is re-admitted.
    """

    crc_check: bool = False
    beacon_gate_sigma: float = 0.0
    beacon_gate_slack_m: float = 10.0
    watchdog: bool = False
    anchor_expiry_s: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("beacon_gate_sigma", self.beacon_gate_sigma)
        check_non_negative("beacon_gate_slack_m", self.beacon_gate_slack_m)
        check_non_negative("anchor_expiry_s", self.anchor_expiry_s)

    def is_noop(self) -> bool:
        return not (
            self.crc_check
            or self.beacon_gate_sigma > 0.0
            or self.watchdog
            or self.anchor_expiry_s > 0.0
        )
