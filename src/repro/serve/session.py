"""Per-tenant estimator sessions and the warm-start calibration store.

A :class:`TenantSession` owns one tenant's live localization state: one
RF-only :class:`~repro.core.estimator.PositionEstimator` per robot, fed
through the estimator's ingestion surface exactly as the batch
coordinator feeds it.  Sessions are synchronous, single-owner objects —
each one lives inside exactly one shard worker (see
:mod:`repro.serve.shard`), so they need no locks.

Determinism contract (regression-tested in ``tests/test_serve_replay.py``):

- observations buffer per (robot, window) and are applied **sorted by
  their source sequence number** at window close, so any delivery order
  within a window produces the same filter-application order — the one
  the batch simulation used;
- the estimator is built with every graceful-degradation defense off
  (matching :class:`~repro.core.config.DefenseConfig` defaults) and the
  same grid geometry / PDF table / LUT setting as the recording run;
- observations arriving while no window is open are acknowledged but
  never applied: in the batch path such beacons land in a filter that
  the next window-open resets before any fix reads it, so dropping
  them is fix-equivalent (and keeps a session's memory bounded).

Durability (regression-tested in ``tests/test_serve_durability.py``):
a session given a :class:`~repro.serve.checkpoint.CheckpointStore`
writes a full :meth:`TenantSession.snapshot` on every window close (and
on eviction/drain via :meth:`TenantSession.checkpoint_now`), and a
session re-built from one via :meth:`TenantSession.restore_from`
continues bit-identically.  The rid **reply cache** makes client
retries idempotent; it deliberately caches only *ok, state-mutating*
replies (window opens/closes, and observes that actually buffered) —
never errors and never no-op acks — so a whole-window retry with the
original rids is safe against every crash interleaving: a replayed
request that mutated state returns its original reply, and one that
never executed (or whose effect a checkpoint restore rolled back, which
also rolls back the cache) simply executes again.

Calibration tables are a property of the radio hardware, not the
tenant, and cost ~1 s to build at paper fidelity — so
:class:`CalibrationStore` shares them across tenants in-process and
warm-starts them from the orchestrator's content-addressed cache
(:meth:`~repro.orchestrator.cache.ResultCache.get_payload`) across
processes.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.calibration import build_pdf_table
from repro.core.config import LocalizationMode
from repro.core.estimator import BeaconObservation, PositionEstimator
from repro.core.pdf_table import PdfTable
from repro.kernels import resolve_kernels
from repro.net.phy import PathLossModel, ReceiverModel
from repro.serve.checkpoint import SessionCheckpoint, checkpoint_fingerprint
from repro.serve.protocol import (
    ConfidenceRequest,
    FixRequest,
    HelloRequest,
    ObserveRequest,
    Response,
    StatsRequest,
    WindowRequest,
    error_response,
)
from repro.sim.rng import RandomStreams
from repro.telemetry.registry import NULL_REGISTRY
from repro.util.geometry import Rect

__all__ = [
    "SessionLimits",
    "TenantSession",
    "CalibrationStore",
    "calibration_fingerprint",
]


class SessionLimits:
    """Graceful-degradation knobs for one session.

    Attributes:
        max_robots: robots one tenant may track (further window-opens
            are refused with ``robot_limit``).
        max_pending_observations: buffered observations per robot per
            window; overflow is dropped and counted, never queued
            unboundedly.
        reply_cache_size: cached ``(rid, reply)`` pairs kept for
            idempotent retries; oldest entries fall out first.  It only
            needs to cover one client's retry horizon (one in-flight
            window), so it stays small.
    """

    __slots__ = ("max_robots", "max_pending_observations", "reply_cache_size")

    def __init__(
        self,
        max_robots: int = 256,
        max_pending_observations: int = 1024,
        reply_cache_size: int = 256,
    ) -> None:
        if max_robots < 1 or max_pending_observations < 1:
            raise ValueError("session limits must be >= 1")
        if reply_cache_size < 1:
            raise ValueError("session limits must be >= 1")
        self.max_robots = max_robots
        self.max_pending_observations = max_pending_observations
        self.reply_cache_size = reply_cache_size


class _RobotLane:
    """One robot's window state inside a session."""

    __slots__ = ("estimator", "window", "window_open", "pending")

    def __init__(self, estimator: PositionEstimator) -> None:
        self.estimator = estimator
        self.window = 0
        self.window_open = False
        #: (seq, observation) buffered for the current window.
        self.pending: List[Tuple[int, BeaconObservation]] = []


class TenantSession:
    """One tenant's estimator state machine.

    Args:
        hello: the session-opening request (geometry + calibration id).
        table: the tenant's calibrated PDF table (shared, never mutated
            here).
        limits: per-tenant degradation limits.
        clock: monotonic time source for idle tracking (injectable so
            eviction tests never sleep).
        registry: telemetry registry for service-level counters.
        checkpoints: optional
            :class:`~repro.serve.checkpoint.CheckpointStore`; when
            given, the session checkpoints itself on every window close
            (and callers checkpoint it on eviction/drain).
    """

    def __init__(
        self,
        hello: HelloRequest,
        table: PdfTable,
        limits: Optional[SessionLimits] = None,
        clock: Optional[Callable[[], float]] = None,
        registry=NULL_REGISTRY,
        checkpoints=None,
    ) -> None:
        self.tenant = hello.tenant
        self.hello = hello
        self._table = table
        self._limits = limits if limits is not None else SessionLimits()
        self._clock = clock if clock is not None else _ZERO_CLOCK
        self._registry = registry
        self._checkpoints = checkpoints
        self._area = Rect.square(hello.area_side_m)
        self._lanes: Dict[int, _RobotLane] = {}
        #: robot -> its record in the last snapshot; lanes untouched
        #: since then reuse it, so a checkpoint costs one estimator
        #: snapshot (the lane the request mutated), not one per robot.
        self._lane_records: Dict[int, Dict[str, object]] = {}
        self._dirty_lanes: set = set()
        #: rid -> reply, oldest first (idempotent-retry cache).
        self._replies: "OrderedDict[int, Response]" = OrderedDict()
        self.resume_token = checkpoint_fingerprint(hello)
        self.last_active = self._clock()
        # Session counters (also served by the ``stats`` op).
        self.observations = 0
        self.observations_dropped = 0
        self.observations_out_of_window = 0
        self.windows_opened = 0
        self.windows_closed = 0
        self.fixes = 0
        self.replays_served = 0

    # -- state ---------------------------------------------------------------

    @property
    def n_robots(self) -> int:
        return len(self._lanes)

    def idle_for(self, now: float) -> float:
        """Seconds since the last request touched this session."""
        return max(0.0, now - self.last_active)

    def _lane_for(self, robot: int, create: bool) -> Optional[_RobotLane]:
        lane = self._lanes.get(robot)
        if lane is None and create:
            if len(self._lanes) >= self._limits.max_robots:
                return None
            estimator = PositionEstimator(
                mode=LocalizationMode.RF_ONLY,
                area=self._area,
                pdf_table=self._table,
                grid_resolution_m=self.hello.grid_resolution_m,
                min_beacons_for_fix=self.hello.min_beacons_for_fix,
            )
            lane = self._lanes[robot] = _RobotLane(estimator)
            robots = self._registry.gauge("serve_robots_active")
            robots.add(1)
            self._registry.gauge("serve_robots_active_peak").set_max(
                robots.value
            )
        return lane

    # -- request handling ----------------------------------------------------

    def handle(self, request, trace=None) -> Response:
        """Dispatch one already-validated request for this tenant.

        A request whose ``rid`` is already in the reply cache is a
        client retry of work this session has performed: the original
        reply comes back verbatim and nothing is re-executed.

        ``trace`` is the request's
        :class:`~repro.obs.trace.ActiveTrace` (or ``None``); window
        closes record ``estimator_ingest`` and ``checkpoint`` hops on
        it.  Tracing never changes what this method returns.
        """
        self.last_active = self._clock()
        rid = getattr(request, "rid", None)
        if rid is not None:
            cached = self._replies.get(rid)
            if cached is not None:
                self.replays_served += 1
                self._registry.counter("serve_replays_served").inc()
                if trace is not None:
                    trace.root.attrs["replayed"] = True
                return cached
        response = self._dispatch(request, trace)
        if rid is not None and _mutated_state(request, response):
            self._replies[rid] = response
            while len(self._replies) > self._limits.reply_cache_size:
                self._replies.popitem(last=False)
        return response

    def _dispatch(self, request, trace=None) -> Response:
        if isinstance(request, ObserveRequest):
            return self._observe(request)
        if isinstance(request, WindowRequest):
            if request.event == "open":
                return self._window_open(request)
            return self._window_close(request, trace)
        if isinstance(request, FixRequest):
            return self._fix(request)
        if isinstance(request, ConfidenceRequest):
            return self._confidence(request)
        if isinstance(request, StatsRequest):
            return Response(ok=True, payload=self.stats())
        if isinstance(request, HelloRequest):
            # Re-hello on a live session: idempotent attach.
            return Response(ok=True, payload={"tenant": self.tenant,
                                              "attached": True,
                                              "resume": self.resume_token})
        return error_response("bad_request", "unhandled op for session")

    def _window_open(self, request: WindowRequest) -> Response:
        lane = self._lane_for(request.robot, create=True)
        if lane is None:
            return error_response(
                "robot_limit",
                "tenant tracks %d robots already" % self._limits.max_robots,
            )
        if lane.pending:
            # Stale buffer from a window that never closed: those
            # observations could no longer influence any fix (the open
            # resets the filter), so drop rather than grow.
            self.observations_dropped += len(lane.pending)
            lane.pending.clear()
        lane.window += 1
        lane.window_open = True
        self._dirty_lanes.add(request.robot)
        lane.estimator.on_window_open()
        self.windows_opened += 1
        self._registry.counter("serve_windows_opened").inc()
        return Response(ok=True, payload={"window": lane.window})

    def _observe(self, request: ObserveRequest) -> Response:
        lane = self._lane_for(request.robot, create=False)
        if lane is None or not lane.window_open:
            # Mirrors the batch path: a beacon landing outside a round
            # is wiped by the next window-open's filter reset before
            # any fix can read it, so it is acknowledged and discarded.
            self.observations_out_of_window += 1
            return Response(ok=True, payload={"buffered": False})
        if len(lane.pending) >= self._limits.max_pending_observations:
            self.observations_dropped += 1
            self._registry.counter("serve_observations_dropped").inc()
            return error_response("pending_limit")
        self._dirty_lanes.add(request.robot)
        lane.pending.append((
            request.seq,
            BeaconObservation(
                x=request.x,
                y=request.y,
                rssi_dbm=request.rssi_dbm,
                anchor_id=request.anchor_id,
                t=request.t,
            ),
        ))
        self.observations += 1
        self._registry.counter("serve_observations_total").inc()
        return Response(ok=True, payload={"buffered": True})

    def _window_close(self, request: WindowRequest, trace=None) -> Response:
        lane = self._lane_for(request.robot, create=False)
        if lane is None or not lane.window_open:
            return error_response("no_open_window")
        if (request.expected is not None
                and len(lane.pending) != request.expected):
            # Completeness guard: a crash-and-rehydrate mid-retry can
            # silently roll the pending buffer back to an older
            # checkpoint *between* a client's observes.  Refusing to
            # close (with no state change — this reply is never cached)
            # turns that silent divergence into a retryable error; the
            # client re-sends the window and already-buffered rids
            # dedup through the reply cache.
            return error_response(
                "window_incomplete",
                "close expected %d buffered observations, found %d"
                % (request.expected, len(lane.pending)),
            )
        estimator = lane.estimator
        fixes_before = estimator.fixes
        self._dirty_lanes.add(request.robot)
        ingest_span = (
            trace.open_span(
                "estimator_ingest",
                robot=request.robot, pending=len(lane.pending),
            )
            if trace is not None else None
        )
        # Source order, not arrival order: this is the determinism hinge.
        lane.pending.sort(key=lambda item: item[0])
        for _seq, observation in lane.pending:
            estimator.ingest_observation(observation)
        applied = len(lane.pending)
        lane.pending.clear()
        estimator.on_window_close()
        if trace is not None:
            trace.close_span(ingest_span)
        lane.window_open = False
        self.windows_closed += 1
        self._registry.counter("serve_windows_closed").inc()
        fixed = estimator.fixes > fixes_before
        payload = {
            "window": lane.window,
            "applied": applied,
            "fixed": fixed,
            "fixes": estimator.fixes,
        }
        if fixed:
            self.fixes += 1
            self._registry.counter("serve_fixes_total").inc()
            payload.update(_fix_fields(estimator))
        response = Response(ok=True, payload=payload)
        if self._checkpoints is not None:
            # Cache the reply *before* snapshotting so the checkpoint's
            # reply cache covers this close: a client that retries it
            # after a crash-and-restore gets this reply, not a re-close.
            if request.rid is not None:
                self._replies[request.rid] = response
                while len(self._replies) > self._limits.reply_cache_size:
                    self._replies.popitem(last=False)
            if trace is not None:
                with trace.hop("checkpoint", robot=request.robot):
                    self.checkpoint_now()
            else:
                self.checkpoint_now()
        return response

    def _fix(self, request: FixRequest) -> Response:
        lane = self._lane_for(request.robot, create=False)
        if lane is None:
            return error_response("unknown_robot")
        estimator = lane.estimator
        self._registry.counter("serve_fix_queries").inc()
        payload = {
            "has_fix": estimator.has_fix,
            "fixes": estimator.fixes,
            "window": lane.window,
        }
        payload.update(_fix_fields(estimator))
        return Response(ok=True, payload=payload)

    def _confidence(self, request: ConfidenceRequest) -> Response:
        lane = self._lane_for(request.robot, create=False)
        if lane is None:
            return error_response("unknown_robot")
        estimator = lane.estimator
        self._registry.counter("serve_confidence_queries").inc()
        payload = {
            "beacons_applied": estimator.filter.beacons_applied,
            "std_m": estimator.filter.position_std_m(),
            "entropy_bits": estimator.filter.entropy_bits(),
            "has_fix": estimator.has_fix,
        }
        if estimator.last_fix_std_m is not None:
            payload["last_fix_std_m"] = estimator.last_fix_std_m
        return Response(ok=True, payload=payload)

    def stats(self) -> Dict[str, object]:
        """The session's counters (the ``stats`` op payload)."""
        return {
            "tenant": self.tenant,
            "robots": self.n_robots,
            "observations": self.observations,
            "observations_dropped": self.observations_dropped,
            "observations_out_of_window": self.observations_out_of_window,
            "windows_opened": self.windows_opened,
            "windows_closed": self.windows_closed,
            "fixes": self.fixes,
            "replays_served": self.replays_served,
        }

    # -- checkpointing -------------------------------------------------------

    def checkpoint_now(self) -> Optional[str]:
        """Write a checkpoint if a store is attached; the resume token.

        Called from :meth:`_window_close` (every close), from the shard
        on TTL eviction, and from the server's graceful drain.  The
        whole method is synchronous — it runs inside the shard worker's
        single-owner ``handle`` slot, so a checkpoint can never observe
        a half-applied window.
        """
        if self._checkpoints is None:
            return None
        self._checkpoints.save(self.snapshot())
        return self.resume_token

    def snapshot(self) -> SessionCheckpoint:
        """The session's complete state, frozen at this request boundary."""
        hello = self.hello
        lanes = []
        for robot in sorted(self._lanes):
            record = self._lane_records.get(robot)
            if record is None or robot in self._dirty_lanes:
                # Only re-snapshot lanes a request touched since the
                # last snapshot; everyone else's record is still exact
                # (records are immutable once built — the estimator
                # snapshot copies its arrays, and restore copies them
                # back out — so sharing them across checkpoints is
                # safe).
                lane = self._lanes[robot]
                record = {
                    "robot": robot,
                    "window": lane.window,
                    "window_open": lane.window_open,
                    "pending": [
                        (seq, {
                            "x": obs.x,
                            "y": obs.y,
                            "rssi_dbm": obs.rssi_dbm,
                            "anchor_id": obs.anchor_id,
                            "t": obs.t,
                        })
                        for seq, obs in lane.pending
                    ],
                    "estimator": lane.estimator.snapshot(),
                }
                self._lane_records[robot] = record
            lanes.append(record)
        self._dirty_lanes.clear()
        return SessionCheckpoint(
            fingerprint=self.resume_token,
            tenant=self.tenant,
            hello={
                "calibration_seed": hello.calibration_seed,
                "calibration_samples": hello.calibration_samples,
                "area_side_m": hello.area_side_m,
                "grid_resolution_m": hello.grid_resolution_m,
                "min_beacons_for_fix": hello.min_beacons_for_fix,
                "lut": hello.lut,
            },
            lanes=lanes,
            counters={
                "observations": self.observations,
                "observations_dropped": self.observations_dropped,
                "observations_out_of_window":
                    self.observations_out_of_window,
                "windows_opened": self.windows_opened,
                "windows_closed": self.windows_closed,
                "fixes": self.fixes,
                "replays_served": self.replays_served,
            },
            replies=[
                (rid, reply.ok, reply.error, dict(reply.payload))
                for rid, reply in self._replies.items()
            ],
        )

    def restore_from(self, checkpoint: SessionCheckpoint) -> None:
        """Adopt a checkpoint's state (bit-exact resume).

        The session must have been built from the same hello identity —
        the estimator snapshots carry a grid-signature guard, so a
        geometry mismatch raises instead of silently resampling.

        Raises:
            ValueError: the checkpoint belongs to a different tenant or
                a different estimator geometry.
        """
        if checkpoint.tenant != self.tenant:
            raise ValueError(
                "checkpoint tenant %r does not match session %r"
                % (checkpoint.tenant, self.tenant)
            )
        # Adopted state invalidates every cached lane record (restore
        # may roll lanes back to states no cached record describes).
        self._lane_records.clear()
        self._dirty_lanes = set()
        for record in checkpoint.lanes:
            lane = self._lane_for(record["robot"], create=True)
            if lane is None:
                raise ValueError("checkpoint exceeds this session's "
                                 "robot limit")
            self._dirty_lanes.add(record["robot"])
            lane.window = int(record["window"])
            lane.window_open = bool(record["window_open"])
            lane.pending = [
                (seq, BeaconObservation(**fields))
                for seq, fields in record["pending"]
            ]
            lane.estimator.restore(record["estimator"])
        counters = checkpoint.counters
        self.observations = int(counters["observations"])
        self.observations_dropped = int(counters["observations_dropped"])
        self.observations_out_of_window = int(
            counters["observations_out_of_window"]
        )
        self.windows_opened = int(counters["windows_opened"])
        self.windows_closed = int(counters["windows_closed"])
        self.fixes = int(counters["fixes"])
        self.replays_served = int(counters.get("replays_served", 0))
        self._replies.clear()
        for rid, ok, error, payload in checkpoint.replies:
            self._replies[rid] = Response(
                ok=ok, error=error, payload=payload
            )
        self._registry.counter("serve_sessions_restored").inc()


def _mutated_state(request, response: Response) -> bool:
    """Should this reply enter the idempotent-retry cache?

    Only *ok, state-mutating* replies are cached.  Errors are never
    cached (the client treats them as terminal, not retryable), and
    neither are no-op acks: an observe that answered ``buffered: False``
    changed nothing, and caching it would poison a later same-rid retry
    of the whole window (the retry must re-ingest, not replay the
    no-op).  Read-only ops (fix/confidence/stats) are cheap and
    side-effect-free, so re-executing their retries is both safe and
    fresher than any cache.
    """
    if not response.ok:
        return False
    if isinstance(request, WindowRequest):
        return True
    if isinstance(request, ObserveRequest):
        return bool(response.payload.get("buffered"))
    return False


def _fix_fields(estimator: PositionEstimator) -> Dict[str, object]:
    """The estimate, both as JSON floats (repr round-trips doubles
    exactly) and as ``float.hex`` tokens for the byte-equality gate."""
    estimate = estimator.estimate
    return {
        "x": estimate.x,
        "y": estimate.y,
        "x_hex": float(estimate.x).hex(),
        "y_hex": float(estimate.y).hex(),
    }


def _ZERO_CLOCK() -> float:
    return 0.0


# -- calibration warm-start --------------------------------------------------


def calibration_fingerprint(
    seed: int,
    samples: int,
    path_loss: Optional[PathLossModel] = None,
    receiver: Optional[ReceiverModel] = None,
) -> str:
    """Content hash naming one calibration table in the warm-start store.

    Prefixed so calibration payloads can never collide with TeamResult
    fingerprints inside the shared orchestrator cache.
    """
    path_loss = path_loss if path_loss is not None else PathLossModel()
    receiver = receiver if receiver is not None else ReceiverModel()
    token = "calibration|seed=%d|samples=%d|%r|%r" % (
        seed, samples, path_loss, receiver,
    )
    return "cal-" + hashlib.sha256(token.encode("utf-8")).hexdigest()


class CalibrationStore:
    """Shares calibrated PDF tables across tenants and processes.

    Lookup order: in-process dict (keyed by seed/samples/LUT flag) →
    the orchestrator's content-addressed cache (when given) → a fresh
    :func:`~repro.core.calibration.build_pdf_table` run, whose result
    is pushed back into both layers.

    Args:
        warm_store: optional
            :class:`~repro.orchestrator.cache.ResultCache`; its payload
            API persists tables across server restarts.
        registry: telemetry registry (hit/miss counters).
    """

    def __init__(self, warm_store=None, registry=NULL_REGISTRY) -> None:
        self._warm_store = warm_store
        self._registry = registry
        self._tables: Dict[Tuple[int, int, bool], PdfTable] = {}

    def table_for(self, hello: HelloRequest) -> PdfTable:
        """The (possibly cached) table for a hello's calibration identity."""
        kernels = resolve_kernels(None)
        lut = hello.lut if hello.lut is not None else kernels.lut_pdf
        key = (hello.calibration_seed, hello.calibration_samples, bool(lut))
        table = self._tables.get(key)
        if table is not None:
            self._registry.counter("serve_warmstart_hits").inc()
            return table
        table = self._warm_table(
            hello.calibration_seed, hello.calibration_samples
        )
        # LUT selection is per-table; tables are cached per LUT flag so
        # tenants with different flags never mutate each other's table.
        table.set_lut(bool(lut), kernels.lut_entries)
        self._tables[key] = table
        return table

    def _warm_table(self, seed: int, samples: int) -> PdfTable:
        fingerprint = calibration_fingerprint(seed, samples)
        if self._warm_store is not None:
            cached = self._warm_store.get_payload(fingerprint, PdfTable)
            if cached is not None:
                self._registry.counter("serve_warmstart_hits").inc()
                return cached
        self._registry.counter("serve_warmstart_misses").inc()
        result = build_pdf_table(
            PathLossModel(),
            RandomStreams(seed).get("calibration"),
            n_samples=samples,
            receiver=ReceiverModel(),
        )
        if self._warm_store is not None:
            self._warm_store.put_payload(
                fingerprint, result.table, job_name="serve-calibration"
            )
        return result.table
