"""Per-tenant estimator sessions and the warm-start calibration store.

A :class:`TenantSession` owns one tenant's live localization state: one
RF-only :class:`~repro.core.estimator.PositionEstimator` per robot, fed
through the estimator's ingestion surface exactly as the batch
coordinator feeds it.  Sessions are synchronous, single-owner objects —
each one lives inside exactly one shard worker (see
:mod:`repro.serve.shard`), so they need no locks.

Determinism contract (regression-tested in ``tests/test_serve_replay.py``):

- observations buffer per (robot, window) and are applied **sorted by
  their source sequence number** at window close, so any delivery order
  within a window produces the same filter-application order — the one
  the batch simulation used;
- the estimator is built with every graceful-degradation defense off
  (matching :class:`~repro.core.config.DefenseConfig` defaults) and the
  same grid geometry / PDF table / LUT setting as the recording run;
- observations arriving while no window is open are acknowledged but
  never applied: in the batch path such beacons land in a filter that
  the next window-open resets before any fix reads it, so dropping
  them is fix-equivalent (and keeps a session's memory bounded).

Calibration tables are a property of the radio hardware, not the
tenant, and cost ~1 s to build at paper fidelity — so
:class:`CalibrationStore` shares them across tenants in-process and
warm-starts them from the orchestrator's content-addressed cache
(:meth:`~repro.orchestrator.cache.ResultCache.get_payload`) across
processes.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.calibration import build_pdf_table
from repro.core.config import LocalizationMode
from repro.core.estimator import BeaconObservation, PositionEstimator
from repro.core.pdf_table import PdfTable
from repro.kernels import resolve_kernels
from repro.net.phy import PathLossModel, ReceiverModel
from repro.serve.protocol import (
    ConfidenceRequest,
    FixRequest,
    HelloRequest,
    ObserveRequest,
    Response,
    StatsRequest,
    WindowRequest,
    error_response,
)
from repro.sim.rng import RandomStreams
from repro.telemetry.registry import NULL_REGISTRY
from repro.util.geometry import Rect

__all__ = [
    "SessionLimits",
    "TenantSession",
    "CalibrationStore",
    "calibration_fingerprint",
]


class SessionLimits:
    """Graceful-degradation knobs for one session.

    Attributes:
        max_robots: robots one tenant may track (further window-opens
            are refused with ``robot_limit``).
        max_pending_observations: buffered observations per robot per
            window; overflow is dropped and counted, never queued
            unboundedly.
    """

    __slots__ = ("max_robots", "max_pending_observations")

    def __init__(
        self,
        max_robots: int = 256,
        max_pending_observations: int = 1024,
    ) -> None:
        if max_robots < 1 or max_pending_observations < 1:
            raise ValueError("session limits must be >= 1")
        self.max_robots = max_robots
        self.max_pending_observations = max_pending_observations


class _RobotLane:
    """One robot's window state inside a session."""

    __slots__ = ("estimator", "window", "window_open", "pending")

    def __init__(self, estimator: PositionEstimator) -> None:
        self.estimator = estimator
        self.window = 0
        self.window_open = False
        #: (seq, observation) buffered for the current window.
        self.pending: List[Tuple[int, BeaconObservation]] = []


class TenantSession:
    """One tenant's estimator state machine.

    Args:
        hello: the session-opening request (geometry + calibration id).
        table: the tenant's calibrated PDF table (shared, never mutated
            here).
        limits: per-tenant degradation limits.
        clock: monotonic time source for idle tracking (injectable so
            eviction tests never sleep).
        registry: telemetry registry for service-level counters.
    """

    def __init__(
        self,
        hello: HelloRequest,
        table: PdfTable,
        limits: Optional[SessionLimits] = None,
        clock: Optional[Callable[[], float]] = None,
        registry=NULL_REGISTRY,
    ) -> None:
        self.tenant = hello.tenant
        self.hello = hello
        self._table = table
        self._limits = limits if limits is not None else SessionLimits()
        self._clock = clock if clock is not None else _ZERO_CLOCK
        self._registry = registry
        self._area = Rect.square(hello.area_side_m)
        self._lanes: Dict[int, _RobotLane] = {}
        self.last_active = self._clock()
        # Session counters (also served by the ``stats`` op).
        self.observations = 0
        self.observations_dropped = 0
        self.observations_out_of_window = 0
        self.windows_opened = 0
        self.windows_closed = 0
        self.fixes = 0

    # -- state ---------------------------------------------------------------

    @property
    def n_robots(self) -> int:
        return len(self._lanes)

    def idle_for(self, now: float) -> float:
        """Seconds since the last request touched this session."""
        return max(0.0, now - self.last_active)

    def _lane_for(self, robot: int, create: bool) -> Optional[_RobotLane]:
        lane = self._lanes.get(robot)
        if lane is None and create:
            if len(self._lanes) >= self._limits.max_robots:
                return None
            estimator = PositionEstimator(
                mode=LocalizationMode.RF_ONLY,
                area=self._area,
                pdf_table=self._table,
                grid_resolution_m=self.hello.grid_resolution_m,
                min_beacons_for_fix=self.hello.min_beacons_for_fix,
            )
            lane = self._lanes[robot] = _RobotLane(estimator)
        return lane

    # -- request handling ----------------------------------------------------

    def handle(self, request) -> Response:
        """Dispatch one already-validated request for this tenant."""
        self.last_active = self._clock()
        if isinstance(request, ObserveRequest):
            return self._observe(request)
        if isinstance(request, WindowRequest):
            if request.event == "open":
                return self._window_open(request)
            return self._window_close(request)
        if isinstance(request, FixRequest):
            return self._fix(request)
        if isinstance(request, ConfidenceRequest):
            return self._confidence(request)
        if isinstance(request, StatsRequest):
            return Response(ok=True, payload=self.stats())
        if isinstance(request, HelloRequest):
            # Re-hello on a live session: idempotent attach.
            return Response(ok=True, payload={"tenant": self.tenant,
                                              "attached": True})
        return error_response("bad_request", "unhandled op for session")

    def _window_open(self, request: WindowRequest) -> Response:
        lane = self._lane_for(request.robot, create=True)
        if lane is None:
            return error_response(
                "robot_limit",
                "tenant tracks %d robots already" % self._limits.max_robots,
            )
        if lane.pending:
            # Stale buffer from a window that never closed: those
            # observations could no longer influence any fix (the open
            # resets the filter), so drop rather than grow.
            self.observations_dropped += len(lane.pending)
            lane.pending.clear()
        lane.window += 1
        lane.window_open = True
        lane.estimator.on_window_open()
        self.windows_opened += 1
        self._registry.counter("serve_windows_opened").inc()
        return Response(ok=True, payload={"window": lane.window})

    def _observe(self, request: ObserveRequest) -> Response:
        lane = self._lane_for(request.robot, create=False)
        if lane is None or not lane.window_open:
            # Mirrors the batch path: a beacon landing outside a round
            # is wiped by the next window-open's filter reset before
            # any fix can read it, so it is acknowledged and discarded.
            self.observations_out_of_window += 1
            return Response(ok=True, payload={"buffered": False})
        if len(lane.pending) >= self._limits.max_pending_observations:
            self.observations_dropped += 1
            self._registry.counter("serve_observations_dropped").inc()
            return error_response("pending_limit")
        lane.pending.append((
            request.seq,
            BeaconObservation(
                x=request.x,
                y=request.y,
                rssi_dbm=request.rssi_dbm,
                anchor_id=request.anchor_id,
                t=request.t,
            ),
        ))
        self.observations += 1
        self._registry.counter("serve_observations_total").inc()
        return Response(ok=True, payload={"buffered": True})

    def _window_close(self, request: WindowRequest) -> Response:
        lane = self._lane_for(request.robot, create=False)
        if lane is None or not lane.window_open:
            return error_response("no_open_window")
        estimator = lane.estimator
        fixes_before = estimator.fixes
        # Source order, not arrival order: this is the determinism hinge.
        lane.pending.sort(key=lambda item: item[0])
        for _seq, observation in lane.pending:
            estimator.ingest_observation(observation)
        applied = len(lane.pending)
        lane.pending.clear()
        estimator.on_window_close()
        lane.window_open = False
        self.windows_closed += 1
        self._registry.counter("serve_windows_closed").inc()
        fixed = estimator.fixes > fixes_before
        payload = {
            "window": lane.window,
            "applied": applied,
            "fixed": fixed,
            "fixes": estimator.fixes,
        }
        if fixed:
            self.fixes += 1
            self._registry.counter("serve_fixes_total").inc()
            payload.update(_fix_fields(estimator))
        return Response(ok=True, payload=payload)

    def _fix(self, request: FixRequest) -> Response:
        lane = self._lane_for(request.robot, create=False)
        if lane is None:
            return error_response("unknown_robot")
        estimator = lane.estimator
        self._registry.counter("serve_fix_queries").inc()
        payload = {
            "has_fix": estimator.has_fix,
            "fixes": estimator.fixes,
            "window": lane.window,
        }
        payload.update(_fix_fields(estimator))
        return Response(ok=True, payload=payload)

    def _confidence(self, request: ConfidenceRequest) -> Response:
        lane = self._lane_for(request.robot, create=False)
        if lane is None:
            return error_response("unknown_robot")
        estimator = lane.estimator
        self._registry.counter("serve_confidence_queries").inc()
        payload = {
            "beacons_applied": estimator.filter.beacons_applied,
            "std_m": estimator.filter.position_std_m(),
            "entropy_bits": estimator.filter.entropy_bits(),
            "has_fix": estimator.has_fix,
        }
        if estimator.last_fix_std_m is not None:
            payload["last_fix_std_m"] = estimator.last_fix_std_m
        return Response(ok=True, payload=payload)

    def stats(self) -> Dict[str, object]:
        """The session's counters (the ``stats`` op payload)."""
        return {
            "tenant": self.tenant,
            "robots": self.n_robots,
            "observations": self.observations,
            "observations_dropped": self.observations_dropped,
            "observations_out_of_window": self.observations_out_of_window,
            "windows_opened": self.windows_opened,
            "windows_closed": self.windows_closed,
            "fixes": self.fixes,
        }


def _fix_fields(estimator: PositionEstimator) -> Dict[str, object]:
    """The estimate, both as JSON floats (repr round-trips doubles
    exactly) and as ``float.hex`` tokens for the byte-equality gate."""
    estimate = estimator.estimate
    return {
        "x": estimate.x,
        "y": estimate.y,
        "x_hex": float(estimate.x).hex(),
        "y_hex": float(estimate.y).hex(),
    }


def _ZERO_CLOCK() -> float:
    return 0.0


# -- calibration warm-start --------------------------------------------------


def calibration_fingerprint(
    seed: int,
    samples: int,
    path_loss: Optional[PathLossModel] = None,
    receiver: Optional[ReceiverModel] = None,
) -> str:
    """Content hash naming one calibration table in the warm-start store.

    Prefixed so calibration payloads can never collide with TeamResult
    fingerprints inside the shared orchestrator cache.
    """
    path_loss = path_loss if path_loss is not None else PathLossModel()
    receiver = receiver if receiver is not None else ReceiverModel()
    token = "calibration|seed=%d|samples=%d|%r|%r" % (
        seed, samples, path_loss, receiver,
    )
    return "cal-" + hashlib.sha256(token.encode("utf-8")).hexdigest()


class CalibrationStore:
    """Shares calibrated PDF tables across tenants and processes.

    Lookup order: in-process dict (keyed by seed/samples/LUT flag) →
    the orchestrator's content-addressed cache (when given) → a fresh
    :func:`~repro.core.calibration.build_pdf_table` run, whose result
    is pushed back into both layers.

    Args:
        warm_store: optional
            :class:`~repro.orchestrator.cache.ResultCache`; its payload
            API persists tables across server restarts.
        registry: telemetry registry (hit/miss counters).
    """

    def __init__(self, warm_store=None, registry=NULL_REGISTRY) -> None:
        self._warm_store = warm_store
        self._registry = registry
        self._tables: Dict[Tuple[int, int, bool], PdfTable] = {}

    def table_for(self, hello: HelloRequest) -> PdfTable:
        """The (possibly cached) table for a hello's calibration identity."""
        kernels = resolve_kernels(None)
        lut = hello.lut if hello.lut is not None else kernels.lut_pdf
        key = (hello.calibration_seed, hello.calibration_samples, bool(lut))
        table = self._tables.get(key)
        if table is not None:
            self._registry.counter("serve_warmstart_hits").inc()
            return table
        table = self._warm_table(
            hello.calibration_seed, hello.calibration_samples
        )
        # LUT selection is per-table; tables are cached per LUT flag so
        # tenants with different flags never mutate each other's table.
        table.set_lut(bool(lut), kernels.lut_entries)
        self._tables[key] = table
        return table

    def _warm_table(self, seed: int, samples: int) -> PdfTable:
        fingerprint = calibration_fingerprint(seed, samples)
        if self._warm_store is not None:
            cached = self._warm_store.get_payload(fingerprint, PdfTable)
            if cached is not None:
                self._registry.counter("serve_warmstart_hits").inc()
                return cached
        self._registry.counter("serve_warmstart_misses").inc()
        result = build_pdf_table(
            PathLossModel(),
            RandomStreams(seed).get("calibration"),
            n_samples=samples,
            receiver=ReceiverModel(),
        )
        if self._warm_store is not None:
            self._warm_store.put_payload(
                fingerprint, result.table, job_name="serve-calibration"
            )
        return result.table
