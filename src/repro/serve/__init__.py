"""repro.serve — streaming localization-as-a-service.

An asyncio server that accepts beacon-observation streams for many
independent tenants and serves position fixes from the same grid-Bayes
estimator the batch simulation uses — byte-identically (see
``tests/test_serve_replay.py`` and the DESIGN.md service section), and
keeps serving them across crashes, restarts and evictions
(``tests/test_serve_durability.py``, DESIGN.md durability section).

Layers, wire to core: :mod:`~repro.serve.protocol` (NDJSON framing,
rids, resume tokens), :mod:`~repro.serve.server` (TCP front end +
``/metrics`` ``/healthz`` ``/readyz``), :mod:`~repro.serve.shard`
(bounded worker queues, backpressure, eviction),
:mod:`~repro.serve.supervisor` (worker revival + re-hydration),
:mod:`~repro.serve.session` (per-tenant estimator state machines),
:mod:`~repro.serve.checkpoint` (durable session snapshots),
:mod:`~repro.serve.client` (reference clients, retry policy),
:mod:`~repro.serve.replay` (record/replay correctness gate) and
:mod:`~repro.serve.chaos` (deterministic fault-injection harness).
"""

from repro.serve.chaos import ChaosEvent, ChaosReport, ChaosSchedule, run_chaos
from repro.serve.checkpoint import (
    CheckpointStore,
    SessionCheckpoint,
    checkpoint_fingerprint,
)
from repro.serve.client import (
    InProcessClient,
    RetryPolicy,
    ServeClient,
    ServiceError,
    TransportError,
    ensure_ok,
)
from repro.serve.protocol import (
    ProtocolError,
    Request,
    Response,
    parse_request,
    parse_response,
)
from repro.serve.replay import (
    ReplayLog,
    diff_fixes,
    record_replay_log,
    replay_log,
)
from repro.serve.server import LocalizationServer, ServeConfig, ServiceCore
from repro.serve.session import (
    CalibrationStore,
    SessionLimits,
    TenantSession,
    calibration_fingerprint,
)
from repro.serve.shard import Shard, shard_index_for
from repro.serve.supervisor import ShardSupervisor

__all__ = [
    "ChaosEvent",
    "ChaosReport",
    "ChaosSchedule",
    "run_chaos",
    "CheckpointStore",
    "SessionCheckpoint",
    "checkpoint_fingerprint",
    "InProcessClient",
    "RetryPolicy",
    "ServeClient",
    "ServiceError",
    "TransportError",
    "ensure_ok",
    "ProtocolError",
    "Request",
    "Response",
    "parse_request",
    "parse_response",
    "ReplayLog",
    "diff_fixes",
    "record_replay_log",
    "replay_log",
    "LocalizationServer",
    "ServeConfig",
    "ServiceCore",
    "CalibrationStore",
    "SessionLimits",
    "TenantSession",
    "calibration_fingerprint",
    "Shard",
    "shard_index_for",
    "ShardSupervisor",
]
