"""repro.serve — streaming localization-as-a-service.

An asyncio server that accepts beacon-observation streams for many
independent tenants and serves position fixes from the same grid-Bayes
estimator the batch simulation uses — byte-identically (see
``tests/test_serve_replay.py`` and the DESIGN.md service section).

Layers, wire to core: :mod:`~repro.serve.protocol` (NDJSON framing),
:mod:`~repro.serve.server` (TCP front end + ``/metrics``),
:mod:`~repro.serve.shard` (bounded worker queues, backpressure,
eviction), :mod:`~repro.serve.session` (per-tenant estimator state
machines), :mod:`~repro.serve.client` (reference clients) and
:mod:`~repro.serve.replay` (record/replay correctness gate).
"""

from repro.serve.client import InProcessClient, ServeClient
from repro.serve.protocol import (
    ProtocolError,
    Request,
    Response,
    parse_request,
    parse_response,
)
from repro.serve.replay import (
    ReplayLog,
    diff_fixes,
    record_replay_log,
    replay_log,
)
from repro.serve.server import LocalizationServer, ServeConfig, ServiceCore
from repro.serve.session import (
    CalibrationStore,
    SessionLimits,
    TenantSession,
    calibration_fingerprint,
)
from repro.serve.shard import Shard, shard_index_for

__all__ = [
    "InProcessClient",
    "ServeClient",
    "ProtocolError",
    "Request",
    "Response",
    "parse_request",
    "parse_response",
    "ReplayLog",
    "diff_fixes",
    "record_replay_log",
    "replay_log",
    "LocalizationServer",
    "ServeConfig",
    "ServiceCore",
    "CalibrationStore",
    "SessionLimits",
    "TenantSession",
    "calibration_fingerprint",
    "Shard",
    "shard_index_for",
]
