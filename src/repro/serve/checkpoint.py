"""Durable tenant-session checkpoints: the service's crash-recovery spine.

A :class:`SessionCheckpoint` is the complete picklable state of one
:class:`~repro.serve.session.TenantSession` — the hello that shaped it,
every robot lane (estimator snapshot, window counter, pending buffer)
and the idempotency reply cache — frozen at a request boundary.  The
session writes one on every window close, on TTL eviction and on
graceful drain, so the newest checkpoint is never more than one beacon
round behind the live state.

:class:`CheckpointStore` keeps two layers:

- an in-process map (always on) — what shard supervisors re-hydrate
  from after a worker crash, with zero deserialization cost;
- optionally the orchestrator's content-addressed
  :class:`~repro.orchestrator.cache.ResultCache` via its typed
  ``get_payload`` / ``put_payload`` surface — what survives a full
  process restart.  Checkpoint fingerprints are ``ckpt-``-prefixed
  SHA-256 digests of the session *identity* (tenant + estimator
  geometry + calibration identity), so successive checkpoints of one
  session overwrite each other and the latest always wins, while two
  tenants (or one tenant with a changed geometry) can never collide.

The fingerprint doubles as the wire-visible **resume token**: every
hello and checkpointing reply carries it, and a later
``hello {resume: <token>}`` re-hydrates the session from the newest
checkpoint it names.  What a resume token promises — and does not —
is documented in DESIGN.md's durability section.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.serve.protocol import HelloRequest
from repro.telemetry.registry import NULL_REGISTRY

__all__ = [
    "SessionCheckpoint",
    "CheckpointStore",
    "checkpoint_fingerprint",
]


def checkpoint_fingerprint(hello: HelloRequest) -> str:
    """The checkpoint address (= resume token) of a session identity.

    Derived from the tenant name plus everything that shapes the
    estimator pipeline (geometry, calibration identity, LUT flag) —
    exact ``float.hex`` encoding, so two geometries that differ in the
    last bit get distinct addresses.  Prefixed so checkpoint payloads
    can never collide with TeamResult or calibration entries inside the
    shared orchestrator cache.
    """
    token = "checkpoint|tenant=%s|seed=%d|samples=%d|area=%s|grid=%s|min=%d|lut=%r" % (
        hello.tenant,
        hello.calibration_seed,
        hello.calibration_samples,
        float(hello.area_side_m).hex(),
        float(hello.grid_resolution_m).hex(),
        hello.min_beacons_for_fix,
        hello.lut,
    )
    return "ckpt-" + hashlib.sha256(token.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SessionCheckpoint:
    """One tenant session, frozen at a request boundary.

    Attributes:
        fingerprint: the content address (= resume token).
        tenant: owning tenant.
        hello: the session-shaping hello fields (enough to rebuild an
            identically-configured session: geometry + calibration
            identity; transport-only fields like ``rid`` are excluded).
        counters: the session's service counters.
        lanes: one mapping per robot lane — robot id, window counter,
            open flag, pending ``(seq, observation-fields)`` buffer and
            the estimator snapshot.
        replies: the idempotency reply cache as ``(rid, ok, error,
            payload)`` tuples, oldest first.  Restoring it together
            with the estimator state is what makes client retries
            exactly-once across a crash: a rid processed *after* this
            checkpoint is forgotten along with its effects, so the
            retry re-executes against exactly the state it first saw.
    """

    fingerprint: str
    tenant: str
    hello: Dict[str, Any]
    counters: Dict[str, int]
    lanes: List[Dict[str, Any]] = field(default_factory=list)
    replies: List[tuple] = field(default_factory=list)

    def hello_request(self) -> HelloRequest:
        """Rebuild the session-shaping hello this checkpoint captured."""
        return HelloRequest(tenant=self.tenant, **self.hello)


class CheckpointStore:
    """Latest-wins checkpoint storage, in-process plus optional disk.

    Args:
        cache: optional :class:`~repro.orchestrator.cache.ResultCache`;
            when given, every save is also persisted through its typed
            payload API so sessions survive full process restarts.
        registry: telemetry registry (save/load/restore counters).
    """

    def __init__(self, cache=None, registry=NULL_REGISTRY) -> None:
        self._cache = cache
        self._registry = registry
        #: fingerprint -> newest checkpoint (in-process layer).
        self._memory: Dict[str, SessionCheckpoint] = {}
        #: tenant -> fingerprint of its newest checkpoint.
        self._latest: Dict[str, str] = {}
        self.saves = 0
        self.loads = 0

    def save(self, checkpoint: SessionCheckpoint) -> None:
        """Store ``checkpoint`` as its tenant's newest (best effort)."""
        self._memory[checkpoint.fingerprint] = checkpoint
        self._latest[checkpoint.tenant] = checkpoint.fingerprint
        self.saves += 1
        self._registry.counter("serve_checkpoints_saved").inc()
        if self._cache is not None:
            self._cache.put_payload(
                checkpoint.fingerprint, checkpoint,
                job_name="serve-checkpoint",
            )

    def load(self, fingerprint: str) -> Optional[SessionCheckpoint]:
        """The checkpoint at ``fingerprint``, or ``None``.

        The in-process layer answers first; a process that restarted
        falls through to the disk cache (typed lookup — a non-checkpoint
        payload at the address reads as a miss, never a crash).
        """
        checkpoint = self._memory.get(fingerprint)
        if checkpoint is None and self._cache is not None:
            checkpoint = self._cache.get_payload(
                fingerprint, SessionCheckpoint
            )
            if checkpoint is not None:
                self._memory[fingerprint] = checkpoint
                self._latest[checkpoint.tenant] = fingerprint
        if checkpoint is not None:
            self.loads += 1
            self._registry.counter("serve_checkpoints_loaded").inc()
        return checkpoint

    def load_for_tenant(self, tenant: str) -> Optional[SessionCheckpoint]:
        """The tenant's newest checkpoint known to this process."""
        fingerprint = self._latest.get(tenant)
        if fingerprint is None:
            return None
        return self.load(fingerprint)

    def forget(self, tenant: str) -> None:
        """Drop the tenant's checkpoint (explicit ``bye``)."""
        fingerprint = self._latest.pop(tenant, None)
        if fingerprint is not None:
            self._memory.pop(fingerprint, None)
            if self._cache is not None:
                self._cache.remove(fingerprint)

    def tenants(self) -> List[str]:
        """Tenants with a live checkpoint, sorted (deterministic)."""
        return sorted(self._latest)
