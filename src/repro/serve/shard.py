"""Shard workers: bounded queues, backpressure and session eviction.

Tenants are partitioned over a fixed set of shards by a **stable** hash
of the tenant name (SHA-256, never Python's randomized ``hash``), so a
tenant's requests always serialize through one shard worker — which is
what lets :class:`~repro.serve.session.TenantSession` stay lock-free.

Each shard runs one asyncio worker task draining a **bounded** queue:

- a full shard queue sheds new work immediately with an ``overloaded``
  error instead of queueing unboundedly (constant-cost rejection is the
  degradation mode, not latency collapse);
- a per-tenant in-flight cap sheds a single hot tenant *before* it can
  fill the shard queue and starve its neighbours (``tenant_overloaded``);
- a dedicated **sweeper task** periodically evicts sessions idle past
  the TTL (idleness measured on the injectable clock), so abandoned
  tenants cannot hold estimator grids forever — even on a shard that
  never goes quiet between requests.

Durability hooks: a shard given a
:class:`~repro.serve.checkpoint.CheckpointStore` checkpoints sessions
before evicting them, re-hydrates a session from its checkpoint when a
``hello`` carries a ``resume`` token, and exposes
:meth:`Shard.restore_session` / :meth:`Shard.restart_worker` for the
:class:`~repro.serve.supervisor.ShardSupervisor` to rebuild state after
a worker crash.

Every queue transition is counted in the server's telemetry registry;
``/metrics`` makes the pressure visible while the service runs.
"""

from __future__ import annotations

import asyncio
import hashlib
from typing import Callable, Dict, Optional

from repro.serve.protocol import (
    ByeRequest,
    HelloRequest,
    PingRequest,
    Request,
    Response,
    error_response,
)
from repro.obs.oplog import NULL_OPS_LOG
from repro.serve.session import TenantSession
from repro.telemetry.registry import NULL_REGISTRY

__all__ = ["Shard", "shard_index_for"]


def shard_index_for(tenant: str, n_shards: int) -> int:
    """Stable tenant → shard mapping (identical across processes/runs)."""
    digest = hashlib.sha256(tenant.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


class Shard:
    """One worker event loop owning a disjoint set of tenant sessions.

    Args:
        index: shard number (labels and stats).
        session_factory: builds a :class:`TenantSession` from a
            :class:`~repro.serve.protocol.HelloRequest` (the server
            injects the calibration store through this).
        queue_limit: bounded queue depth; submissions beyond it shed.
        tenant_inflight_limit: queued-request cap per tenant.
        session_ttl_s: idle seconds before a session is evicted
            (``0`` disables eviction).
        sweep_interval_s: how often the sweeper task looks for idle
            sessions to evict.
        clock: monotonic time source for idle measurement (injectable
            for tests — eviction tests advance it instead of sleeping).
        registry: telemetry registry for queue/eviction counters.
        checkpoints: optional
            :class:`~repro.serve.checkpoint.CheckpointStore` enabling
            checkpoint-before-evict and resume-token re-hydration.
        ops: structured ops-event log (:class:`~repro.obs.oplog.OpsLog`)
            for eviction events; a no-op shim by default.
    """

    def __init__(
        self,
        index: int,
        session_factory: Callable[[HelloRequest], TenantSession],
        queue_limit: int = 256,
        tenant_inflight_limit: int = 32,
        session_ttl_s: float = 300.0,
        sweep_interval_s: float = 1.0,
        clock: Optional[Callable[[], float]] = None,
        registry=NULL_REGISTRY,
        checkpoints=None,
        ops=NULL_OPS_LOG,
    ) -> None:
        if queue_limit < 1 or tenant_inflight_limit < 1:
            raise ValueError("queue limits must be >= 1")
        if session_ttl_s < 0 or sweep_interval_s <= 0:
            raise ValueError("ttl must be >= 0, sweep interval > 0")
        self.index = index
        self._session_factory = session_factory
        self._queue_limit = queue_limit
        self._tenant_limit = tenant_inflight_limit
        self._ttl_s = session_ttl_s
        self._sweep_s = sweep_interval_s
        self._clock = clock if clock is not None else _zero_clock
        self._registry = registry
        self._checkpoints = checkpoints
        self._ops = ops
        self._queue: "asyncio.Queue" = asyncio.Queue(maxsize=queue_limit)
        self._inflight: Dict[str, int] = {}
        self.sessions: Dict[str, TenantSession] = {}
        self._worker: Optional[asyncio.Task] = None
        self._sweeper: Optional[asyncio.Task] = None
        self._stopping = False
        self.processed = 0
        self.shed = 0
        self.evicted = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker and sweeper tasks (idempotent)."""
        loop = asyncio.get_running_loop()
        self._stopping = False
        if self._worker is None:
            self._worker = loop.create_task(self._run())
        if self._sweeper is None and self._ttl_s > 0:
            self._sweeper = loop.create_task(self._sweep_loop())

    @property
    def worker_task(self) -> Optional[asyncio.Task]:
        """The live worker task (the supervisor watches its death)."""
        return self._worker

    @property
    def stopping(self) -> bool:
        """True while an orderly stop/drain is in progress."""
        return self._stopping

    def restart_worker(self) -> asyncio.Task:
        """Replace a dead worker task with a fresh one.

        Called by the supervisor after an unexpected worker death; the
        queue and the surviving sessions are untouched — re-hydration
        of *lost* sessions is the supervisor's job.
        """
        self._worker = asyncio.get_running_loop().create_task(self._run())
        return self._worker

    async def stop(self) -> None:
        """Stop immediately: cancel the tasks and fail queued work."""
        self._stopping = True
        worker, self._worker = self._worker, None
        sweeper, self._sweeper = self._sweeper, None
        for task in (worker, sweeper):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                except Exception:
                    # A task that already died of its own exception
                    # re-raises it here; shutdown must still complete.
                    pass
        while not self._queue.empty():
            _request, future, _trace = self._queue.get_nowait()
            if not future.done():
                future.set_result(error_response("shutting_down"))
        # The failed futures above never reach the worker's decrement,
        # so drop the in-flight ledger with them: a later start() must
        # not shed tenants against counts from a previous life.
        self._inflight.clear()

    async def drain(self) -> int:
        """Graceful stop prelude: refuse new work, finish queued work,
        checkpoint every session.  Returns the checkpoint count.

        The shard keeps running (queries still answer) until
        :meth:`stop`; callers sequence ``drain() → stop()``.
        """
        self._stopping = True
        if self._worker is not None and not self._worker.done():
            # Only wait on the backlog while a worker exists to drain
            # it; with a dead worker the checkpoints are what matter.
            await self._queue.join()
        return self.checkpoint_all()

    def checkpoint_all(self) -> int:
        """Checkpoint every live session (eviction order: sorted)."""
        count = 0
        for tenant in sorted(self.sessions):
            if self.sessions[tenant].checkpoint_now() is not None:
                count += 1
        return count

    # -- submission ----------------------------------------------------------

    def submit(self, request: Request, trace=None) -> "asyncio.Future":
        """Enqueue one request; resolves to its :class:`Response`.

        Sheds (an immediately-resolved error future) when the shard
        queue or the tenant's in-flight budget is exhausted.  ``trace``
        is the request's :class:`~repro.obs.trace.ActiveTrace` (or
        ``None``): it rides the queue tuple so the worker can close the
        queue-wait span the moment it dequeues.
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        if self._stopping:
            future.set_result(error_response("shutting_down"))
            return future
        tenant = getattr(request, "tenant", "")
        if self._inflight.get(tenant, 0) >= self._tenant_limit:
            self.shed += 1
            self._registry.counter("serve_shed_tenant").inc()
            future.set_result(error_response("tenant_overloaded"))
            return future
        try:
            self._queue.put_nowait((request, future, trace))
        except asyncio.QueueFull:
            self.shed += 1
            self._registry.counter("serve_shed_total").inc()
            future.set_result(error_response("overloaded"))
            return future
        self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
        self._registry.gauge("serve_queue_depth_max").set_max(
            self._queue.qsize()
        )
        return future

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # -- worker --------------------------------------------------------------

    async def _run(self) -> None:
        while True:
            request, future, trace = await self._queue.get()
            # handle() is synchronous, so a cancellation (shutdown, or a
            # chaos kill) can only land at the ``get`` await above — a
            # request's session mutation and its checkpoint are atomic
            # with respect to worker death.
            try:
                tenant = getattr(request, "tenant", "")
                remaining = self._inflight.get(tenant, 1) - 1
                if remaining > 0:
                    self._inflight[tenant] = remaining
                else:
                    self._inflight.pop(tenant, None)
                service_span = None
                if trace is not None:
                    # Queue wait ends, the worker's service slot begins.
                    service_span = trace.dequeued()
                    service_span.attrs["shard"] = self.index
                response = self.handle(request, trace=trace)
                if trace is not None:
                    trace.close_span(service_span)
                if not future.done():
                    future.set_result(response)
                self.processed += 1
            finally:
                self._queue.task_done()

    async def _sweep_loop(self) -> None:
        """Periodic idle-session eviction, independent of request flow.

        The *cadence* uses the event loop's timer (this is the service
        edge, outside the simulation's virtual-time contract); the
        *idleness measurement* inside :meth:`sweep_idle_sessions` uses
        the injectable clock, so tests advance time without sleeping.
        """
        while True:
            await asyncio.sleep(self._sweep_s)
            try:
                self.sweep_idle_sessions()
            except Exception as exc:
                # The sweeper has no supervisor: an uncaught error (say
                # a checkpoint store hiccup) would end TTL eviction for
                # the rest of the process and re-raise out of stop().
                # Count it, log it, keep sweeping.
                self._registry.counter("serve_sweeper_errors").inc()
                self._ops.emit(
                    "sweeper_error",
                    shard=self.index,
                    error="%s: %s" % (type(exc).__name__, exc),
                )

    def handle(self, request: Request, trace=None) -> Response:
        """Process one request synchronously (the worker's inner step).

        Exposed for the in-process client and unit tests; identical to
        what the worker task runs.
        """
        try:
            return self._dispatch(request, trace)
        except Exception as exc:  # service must outlive a bad request
            self._registry.counter("serve_errors_total").inc()
            return error_response("internal", "%s: %s" % (
                type(exc).__name__, exc,
            ))

    def _dispatch(self, request: Request, trace=None) -> Response:
        if isinstance(request, PingRequest):
            return Response(ok=True, payload={"pong": True,
                                              "shard": self.index})
        if isinstance(request, HelloRequest):
            session = self.sessions.get(request.tenant)
            if session is None:
                session = self._session_factory(request)
                restored = False
                if request.resume is not None:
                    restored = self._try_resume(session, request.resume)
                self.sessions[request.tenant] = session
                self._registry.counter("serve_sessions_created").inc()
                self._registry.gauge("serve_sessions_active").set_max(
                    len(self.sessions)
                )
                payload = {
                    "tenant": request.tenant,
                    "attached": False,
                    "shard": self.index,
                    "resume": session.resume_token,
                }
                if request.resume is not None:
                    payload["restored"] = restored
                return Response(ok=True, payload=payload)
            return session.handle(request, trace=trace)
        if isinstance(request, ByeRequest):
            session = self.sessions.pop(request.tenant, None)
            if session is None:
                return error_response("unknown_tenant")
            self._registry.gauge("serve_robots_active").add(
                -session.n_robots
            )
            if self._checkpoints is not None:
                # An explicit goodbye is a promise not to resume.
                self._checkpoints.forget(request.tenant)
            return Response(ok=True, payload=session.stats())
        session = self.sessions.get(request.tenant)
        if session is None:
            return error_response("unknown_tenant")
        return session.handle(request, trace=trace)

    def _try_resume(self, session: TenantSession, token: str) -> bool:
        """Re-hydrate ``session`` from the checkpoint a hello named.

        Best effort by design: an unknown token, a tenant mismatch or a
        geometry mismatch leaves the fresh session as-is (the client
        learns via ``restored: false`` and replays from its own log);
        resume must never turn into a request error for a tenant whose
        checkpoint simply aged out.
        """
        if self._checkpoints is None:
            return False
        checkpoint = self._checkpoints.load(token)
        if checkpoint is None:
            return False
        try:
            session.restore_from(checkpoint)
        except ValueError:
            self._registry.counter("serve_resume_rejected").inc()
            return False
        return True

    def restore_session(self, checkpoint) -> TenantSession:
        """Rebuild one tenant's session from its checkpoint (supervisor
        re-hydration path after a worker crash lost the live objects)."""
        session = self._session_factory(checkpoint.hello_request())
        session.restore_from(checkpoint)
        self.sessions[checkpoint.tenant] = session
        self._registry.gauge("serve_sessions_active").set_max(
            len(self.sessions)
        )
        return session

    # -- eviction ------------------------------------------------------------

    def sweep_idle_sessions(self) -> int:
        """Evict sessions idle past the TTL; returns the eviction count.

        Sessions are checkpointed before they are dropped (when a store
        is attached), so eviction is a memory-pressure decision, not
        data loss — a later resume-token hello continues the session.
        """
        if self._ttl_s <= 0 or not self.sessions:
            return 0
        now = self._clock()
        expired = [
            tenant
            for tenant, session in sorted(self.sessions.items())
            if session.idle_for(now) > self._ttl_s
        ]
        for tenant in expired:
            session = self.sessions.pop(tenant)
            token = session.checkpoint_now()
            self._registry.gauge("serve_robots_active").add(
                -session.n_robots
            )
            self.evicted += 1
            self._registry.counter("serve_sessions_evicted").inc()
            self._ops.emit(
                "session_evicted",
                tenant=tenant,
                shard=self.index,
                robots=session.n_robots,
                resume=token,
            )
        return len(expired)


def _zero_clock() -> float:
    return 0.0
