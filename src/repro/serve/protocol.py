"""Wire protocol of the streaming localization service.

The service speaks **newline-delimited JSON** over TCP: each request is
one JSON object on one line, each response is one JSON object on one
line, and responses come back in request order per connection (clients
may pipeline).  The same request/response dataclasses also travel
directly through the in-process client used by tests and benchmarks —
the wire format is a serialization of this module's types, never a
separate dialect.

Request vocabulary (the ``op`` field):

- ``hello`` — create (or attach to) a tenant session, declaring the
  estimator geometry and calibration identity.
- ``window`` — a robot's beacon round opened or closed (``event``).
- ``observe`` — one beacon observation for a robot, carrying the
  per-robot ``seq`` assigned at the *source*; the session re-sorts by it
  at window close, which is what makes out-of-order delivery within a
  window harmless (see DESIGN.md).
- ``fix`` / ``confidence`` — query the live posterior.
- ``stats`` — per-tenant session counters.
- ``bye`` — drop the tenant session explicitly.
- ``ping`` — liveness/no-op.

Idempotent retries: every tenant-scoped request may carry a client-
assigned ``rid`` (a per-tenant monotonically increasing request id).
The session keeps a small bounded reply cache of the *state-mutating*
requests it has processed, keyed by rid; a replayed ``(tenant, rid)``
pair — a retry after a dropped connection — returns the original reply
without re-ingesting the observation or re-closing the window.  A
``hello`` may carry a ``resume`` token (the session's checkpoint
fingerprint, reported in every hello/checkpoint payload) to re-hydrate
the session from its latest checkpoint after a crash or eviction; see
:mod:`repro.serve.checkpoint`.

A connection whose first bytes are ``GET `` is treated as a plain HTTP
scrape instead (``/metrics`` serves the Prometheus exposition of the
server's telemetry registry); see :mod:`repro.serve.server`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Union

__all__ = [
    "ProtocolError",
    "HelloRequest",
    "WindowRequest",
    "ObserveRequest",
    "FixRequest",
    "ConfidenceRequest",
    "StatsRequest",
    "ByeRequest",
    "PingRequest",
    "Request",
    "Response",
    "parse_request",
    "encode_request",
    "parse_response",
    "encode_response",
    "error_response",
]

#: Maximum accepted request line length (bytes).  A line longer than
#: this is a protocol error, not a memory commitment.
MAX_LINE_BYTES = 64 * 1024


class ProtocolError(ValueError):
    """A request line that cannot be understood."""


@dataclass(frozen=True)
class HelloRequest:
    """Open (or re-attach to) a tenant session.

    The calibration identity (seed, sample count, LUT flag) plus the
    grid geometry fully determine the estimator pipeline, so a replayed
    observation log carrying the recording run's values reproduces its
    fixes bit for bit.
    """

    tenant: str
    calibration_seed: int = 1
    calibration_samples: int = 120_000
    area_side_m: float = 200.0
    grid_resolution_m: float = 2.0
    min_beacons_for_fix: int = 3
    lut: Optional[bool] = None
    resume: Optional[str] = None
    rid: Optional[int] = None
    trace: Optional[str] = None
    op: str = field(default="hello", init=False)


@dataclass(frozen=True)
class WindowRequest:
    """A robot's beacon round boundary: ``event`` is ``open``/``close``.

    A close may carry ``expected`` — the number of observations the
    client buffered for this window.  The session then refuses to close
    (``window_incomplete``, no state change) unless its pending buffer
    holds exactly that many, which is how a retrying client detects a
    checkpoint restore that silently rolled back part of the window
    mid-retry: re-send the unit until the count matches.
    """

    tenant: str
    robot: int
    event: str
    t: float = 0.0
    expected: Optional[int] = None
    rid: Optional[int] = None
    trace: Optional[str] = None
    op: str = field(default="window", init=False)


@dataclass(frozen=True)
class ObserveRequest:
    """One beacon observation for one robot."""

    tenant: str
    robot: int
    seq: int
    x: float
    y: float
    rssi_dbm: float
    anchor_id: Optional[int] = None
    t: float = 0.0
    rid: Optional[int] = None
    trace: Optional[str] = None
    op: str = field(default="observe", init=False)


@dataclass(frozen=True)
class FixRequest:
    """Query a robot's current position estimate."""

    tenant: str
    robot: int
    rid: Optional[int] = None
    trace: Optional[str] = None
    op: str = field(default="fix", init=False)


@dataclass(frozen=True)
class ConfidenceRequest:
    """Query a robot's posterior spread / entropy."""

    tenant: str
    robot: int
    rid: Optional[int] = None
    trace: Optional[str] = None
    op: str = field(default="confidence", init=False)


@dataclass(frozen=True)
class StatsRequest:
    """Query a tenant session's counters."""

    tenant: str
    rid: Optional[int] = None
    trace: Optional[str] = None
    op: str = field(default="stats", init=False)


@dataclass(frozen=True)
class ByeRequest:
    """Drop the tenant session (frees its estimators immediately)."""

    tenant: str
    rid: Optional[int] = None
    trace: Optional[str] = None
    op: str = field(default="bye", init=False)


@dataclass(frozen=True)
class PingRequest:
    """Liveness probe; routes through a shard like any other request."""

    tenant: str = ""
    trace: Optional[str] = None
    op: str = field(default="ping", init=False)


Request = Union[
    HelloRequest,
    WindowRequest,
    ObserveRequest,
    FixRequest,
    ConfidenceRequest,
    StatsRequest,
    ByeRequest,
    PingRequest,
]

_REQUEST_TYPES: Dict[str, type] = {
    "hello": HelloRequest,
    "window": WindowRequest,
    "observe": ObserveRequest,
    "fix": FixRequest,
    "confidence": ConfidenceRequest,
    "stats": StatsRequest,
    "bye": ByeRequest,
    "ping": PingRequest,
}

_WINDOW_EVENTS = ("open", "close")


@dataclass(frozen=True)
class Response:
    """One reply line.

    Attributes:
        ok: request succeeded.
        error: machine-readable failure tag (``overloaded``,
            ``unknown_tenant``, ``bad_request``, ...) when ``ok`` is
            False.
        payload: op-specific result fields.
        trace: echoed trace id.  Never part of ``payload`` (the replay
            gate compares payloads byte for byte) and never set on the
            session's cached replies — the server splices it onto the
            wire line per delivery, so a retry served from the reply
            cache echoes the *retry's* trace id.
    """

    ok: bool
    error: Optional[str] = None
    payload: Dict[str, Any] = field(default_factory=dict)
    trace: Optional[str] = None


def error_response(tag: str, detail: Optional[str] = None) -> Response:
    payload = {} if detail is None else {"detail": detail}
    return Response(ok=False, error=tag, payload=payload)


def parse_request(data: Union[str, bytes, Dict[str, Any]]) -> Request:
    """Decode one request line (or an already-parsed mapping).

    Raises:
        ProtocolError: malformed JSON, unknown op, or bad fields.
    """
    if isinstance(data, (str, bytes)):
        if len(data) > MAX_LINE_BYTES:
            raise ProtocolError("request line exceeds %d bytes" % MAX_LINE_BYTES)
        try:
            data = json.loads(data)
        except ValueError as exc:
            raise ProtocolError("malformed JSON: %s" % exc) from None
    if not isinstance(data, dict):
        raise ProtocolError("request must be a JSON object")
    op = data.get("op")
    cls = _REQUEST_TYPES.get(op)
    if cls is None:
        raise ProtocolError("unknown op %r" % (op,))
    fields = {k: v for k, v in data.items() if k != "op"}
    try:
        request = cls(**fields)
    except TypeError as exc:
        raise ProtocolError("bad %s request: %s" % (op, exc)) from None
    _validate(request)
    return request


#: Maximum accepted length of a wire ``trace`` id (characters).
MAX_TRACE_CHARS = 128


def _validate(request: Request) -> None:
    if request.trace is not None and (
        not isinstance(request.trace, str)
        or not request.trace
        or len(request.trace) > MAX_TRACE_CHARS
    ):
        raise ProtocolError(
            "trace must be a non-empty string (<=%d chars)" % MAX_TRACE_CHARS
        )
    if not isinstance(request, PingRequest):
        tenant = request.tenant
        if not isinstance(tenant, str) or not tenant or len(tenant) > 256:
            raise ProtocolError("tenant must be a non-empty string (<=256 chars)")
        if request.rid is not None:
            _check_int("rid", request.rid)
    if isinstance(request, WindowRequest):
        if request.event not in _WINDOW_EVENTS:
            raise ProtocolError(
                "window event must be one of %r" % (_WINDOW_EVENTS,)
            )
        _check_int("robot", request.robot)
        if request.expected is not None:
            _check_int("expected", request.expected)
    if isinstance(request, ObserveRequest):
        _check_int("robot", request.robot)
        _check_int("seq", request.seq)
        for name in ("x", "y", "rssi_dbm", "t"):
            value = getattr(request, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ProtocolError("%s must be a number" % name)
        if request.anchor_id is not None:
            _check_int("anchor_id", request.anchor_id)
    if isinstance(request, (FixRequest, ConfidenceRequest)):
        _check_int("robot", request.robot)
    if isinstance(request, HelloRequest):
        if request.calibration_samples < 1:
            raise ProtocolError("calibration_samples must be >= 1")
        if request.area_side_m <= 0 or request.grid_resolution_m <= 0:
            raise ProtocolError("area/grid dimensions must be positive")
        if request.min_beacons_for_fix < 1:
            raise ProtocolError("min_beacons_for_fix must be >= 1")
        if request.resume is not None and (
            not isinstance(request.resume, str)
            or not request.resume
            or len(request.resume) > 256
        ):
            raise ProtocolError(
                "resume must be a non-empty string (<=256 chars)"
            )


def _check_int(name: str, value: Any) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ProtocolError("%s must be a non-negative integer" % name)


def encode_request(request: Request) -> str:
    """One request as its wire line (no trailing newline)."""
    record = asdict(request)
    # Drop defaulted optionals to keep lines short on the hot path.
    for optional in ("anchor_id", "rid", "resume", "expected", "trace"):
        if record.get(optional, 0) is None:
            del record[optional]
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def encode_response(
    response: Response, trace: Optional[str] = None
) -> str:
    """One response as its wire line (no trailing newline).

    ``trace`` (or, failing that, ``response.trace``) is spliced onto the
    line as a top-level ``trace`` key — *not* merged into the payload,
    so cached replies stay byte-identical across retries carrying
    different trace ids.
    """
    record: Dict[str, Any] = {"ok": response.ok}
    if response.error is not None:
        record["error"] = response.error
    if trace is None:
        trace = response.trace
    if trace is not None:
        record["trace"] = trace
    record.update(response.payload)
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def parse_response(line: Union[str, bytes]) -> Response:
    """Decode one response line back into a :class:`Response`."""
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("malformed response JSON: %s" % exc) from None
    if not isinstance(data, dict) or "ok" not in data:
        raise ProtocolError("response must be a JSON object with 'ok'")
    ok = bool(data.pop("ok"))
    error = data.pop("error", None)
    trace = data.pop("trace", None)
    return Response(ok=ok, error=error, payload=data, trace=trace)
