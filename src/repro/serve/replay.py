"""Record batch beacon traffic, replay it through the service, compare.

This module is the correctness gate's machinery.  The claim under test:
a fix computed by the *service* path (protocol → shard → session →
estimator ingestion surface) is **byte-identical** to the fix the
*batch* simulation computed from the same beacon observations — for any
delivery order within a beacon window.

- :func:`record_replay_log` runs a real :class:`~repro.core.team.CoCoATeam`
  scenario with an ingestion tap on every measured estimator, producing
  a :class:`ReplayLog`: the calibration/geometry header plus the exact
  per-robot stream of window-open / beacon / window-close events, with
  each beacon stamped with its source order (``seq``) and each closing
  window stamped with the batch fix as ``float.hex`` tokens.
- :func:`replay_log` feeds that log through any service client
  (in-process or TCP), optionally shuffling each window's beacons to
  exercise out-of-order delivery, and collects the service's fixes.
- :func:`diff_fixes` lists every divergence (empty list = gate passes).

Logs serialize to JSONL (header line + one line per event), so a CI job
can record once and replay in a separate process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.config import CoCoAConfig, LocalizationMode
from repro.core.team import CoCoATeam
from repro.kernels import resolve_kernels
from repro.serve.client import ensure_ok

__all__ = [
    "ReplayLog",
    "record_replay_log",
    "replay_log",
    "diff_fixes",
]


@dataclass
class ReplayLog:
    """A recorded run: calibration identity + per-robot event stream.

    Attributes:
        calibration_seed: the recording run's master seed (names the
            calibration RNG stream, so the service rebuilds the same
            PDF table).
        calibration_samples: calibration Monte-Carlo sample count.
        lut: the recording run's LUT-kernel flag (density evaluation
            must match bit for bit).
        area_side_m: deployment square side.
        grid_resolution_m: Bayesian grid cell size.
        min_beacons_for_fix: fix threshold.
        events: time-ordered event dicts.  Kinds: ``open`` (robot,
            window, t), ``beacon`` (robot, seq, x, y, rssi_dbm,
            anchor_id, t), ``close`` (robot, window, fixed, and — when
            fixed — x_hex/y_hex of the batch fix).
    """

    calibration_seed: int
    calibration_samples: int
    lut: bool
    area_side_m: float
    grid_resolution_m: float
    min_beacons_for_fix: int
    events: List[Dict[str, Any]] = field(default_factory=list)

    def recorded_fixes(self) -> List[Dict[str, Any]]:
        """The batch fixes, one dict per fixed window close."""
        return [
            event for event in self.events
            if event["kind"] == "close" and event.get("fixed")
        ]

    # -- JSONL ---------------------------------------------------------------

    def dump_jsonl(self, path) -> None:
        """Write header + events, one JSON object per line."""
        header = {
            "kind": "header",
            "calibration_seed": self.calibration_seed,
            "calibration_samples": self.calibration_samples,
            "lut": self.lut,
            "area_side_m": self.area_side_m,
            "grid_resolution_m": self.grid_resolution_m,
            "min_beacons_for_fix": self.min_beacons_for_fix,
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")

    @classmethod
    def load_jsonl(cls, path) -> "ReplayLog":
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            raise ValueError("empty replay log: %s" % path)
        header = json.loads(lines[0])
        if header.get("kind") != "header":
            raise ValueError("replay log must start with a header line")
        log = cls(
            calibration_seed=header["calibration_seed"],
            calibration_samples=header["calibration_samples"],
            lut=header["lut"],
            area_side_m=header["area_side_m"],
            grid_resolution_m=header["grid_resolution_m"],
            min_beacons_for_fix=header["min_beacons_for_fix"],
        )
        log.events = [json.loads(line) for line in lines[1:]]
        return log


def record_replay_log(
    config: CoCoAConfig, kernels=None
) -> "tuple[ReplayLog, Any]":
    """Run a batch scenario and capture its beacon traffic and fixes.

    The tap records exactly what the coordinator fed each estimator —
    the simulation's behaviour is unchanged (taps observe; they never
    mutate).  Requires a square deployment area (the service's hello
    carries one side length).

    Args:
        config: the scenario to record (RF-capable; the interesting
            estimators are the RF/CoCoA ones).
        kernels: optional kernel override, forwarded to the team.

    Returns:
        ``(log, result)`` — the replayable log and the batch
        :class:`~repro.core.team.TeamResult`.
    """
    if abs(config.area.width - config.area.height) > 1e-9:
        raise ValueError("replay recording requires a square area")
    if config.localization_mode is LocalizationMode.ODOMETRY_ONLY:
        raise ValueError("nothing to record without RF beacons")
    resolved = resolve_kernels(kernels)
    team = CoCoATeam(config, kernels=kernels)
    log = ReplayLog(
        calibration_seed=config.master_seed,
        calibration_samples=config.calibration_samples,
        lut=bool(resolved.lut_pdf),
        area_side_m=config.area.width,
        grid_resolution_m=config.grid_resolution_m,
        min_beacons_for_fix=config.min_beacons_for_fix,
    )
    for node in team.nodes:
        estimator = node.estimator
        if estimator is None:
            continue
        estimator.set_ingest_tap(
            _Recorder(log.events, node.node_id, estimator, team.sim)
        )
    result = team.run()
    return log, result


class _Recorder:
    """Per-robot ingestion tap appending events to the shared log."""

    __slots__ = ("_events", "_robot", "_estimator", "_sim",
                 "_window", "_seq", "_fixes_seen")

    def __init__(self, events, robot, estimator, sim) -> None:
        self._events = events
        self._robot = robot
        self._estimator = estimator
        self._sim = sim
        self._window = 0
        self._seq = 0
        self._fixes_seen = 0

    def __call__(self, kind: str, observation) -> None:
        if kind == "open":
            self._window += 1
            self._seq = 0
            self._events.append({
                "kind": "open",
                "robot": self._robot,
                "window": self._window,
                "t": self._sim.now,
            })
        elif kind == "beacon":
            event = {
                "kind": "beacon",
                "robot": self._robot,
                "seq": self._seq,
                "x": observation.x,
                "y": observation.y,
                "rssi_dbm": observation.rssi_dbm,
                "t": observation.t,
            }
            if observation.anchor_id is not None:
                event["anchor_id"] = observation.anchor_id
            self._seq += 1
            self._events.append(event)
        elif kind == "close":
            fixed = self._estimator.fixes > self._fixes_seen
            self._fixes_seen = self._estimator.fixes
            event = {
                "kind": "close",
                "robot": self._robot,
                "window": self._window,
                "fixed": fixed,
                "t": self._sim.now,
            }
            if fixed:
                estimate = self._estimator.estimate
                event["x_hex"] = float(estimate.x).hex()
                event["y_hex"] = float(estimate.y).hex()
            self._events.append(event)


async def replay_log(
    client,
    log: ReplayLog,
    tenant: str,
    shuffle_rng=None,
) -> List[Dict[str, Any]]:
    """Feed a recorded log through a service client; return its fixes.

    Beacons recorded inside one window are delivered in recorded order,
    or — when ``shuffle_rng`` (a ``numpy`` Generator) is given — in a
    random permutation of it, which exercises the session's
    sort-by-source-seq recovery.  Each returned dict mirrors the log's
    ``close`` events: robot, window, fixed, x_hex/y_hex.  A failed
    request raises :class:`~repro.serve.client.ServiceError` (the gate
    treats shedding as a failure — the replay harness never overloads a
    healthy server).

    Args:
        client: :class:`~repro.serve.client.InProcessClient` or
            :class:`~repro.serve.client.ServeClient` (connected).
        log: a recorded :class:`ReplayLog`.
        tenant: tenant name to replay under.
        shuffle_rng: optional seeded Generator for out-of-order delivery.
    """
    ensure_ok(await client.hello(
        tenant,
        calibration_seed=log.calibration_seed,
        calibration_samples=log.calibration_samples,
        area_side_m=log.area_side_m,
        grid_resolution_m=log.grid_resolution_m,
        min_beacons_for_fix=log.min_beacons_for_fix,
        lut=log.lut,
    ))
    fixes: List[Dict[str, Any]] = []
    pending: Dict[int, List[Dict[str, Any]]] = {}
    for event in log.events:
        robot = event["robot"]
        kind = event["kind"]
        if kind == "open":
            ensure_ok(await client.window_open(
                tenant, robot, t=event.get("t", 0.0)
            ))
            pending[robot] = []
        elif kind == "beacon":
            pending.setdefault(robot, []).append(event)
        elif kind == "close":
            beacons = pending.pop(robot, [])
            if shuffle_rng is not None and len(beacons) > 1:
                order = shuffle_rng.permutation(len(beacons))
                beacons = [beacons[i] for i in order]
            for beacon in beacons:
                response = await client.observe(
                    tenant,
                    robot,
                    seq=beacon["seq"],
                    x=beacon["x"],
                    y=beacon["y"],
                    rssi_dbm=beacon["rssi_dbm"],
                    anchor_id=beacon.get("anchor_id"),
                    t=beacon.get("t", 0.0),
                )
                ensure_ok(response)
            response = ensure_ok(await client.window_close(
                tenant, robot, t=event.get("t", 0.0),
                expected=len(beacons),
            ))
            record = {
                "robot": robot,
                "window": event["window"],
                "fixed": bool(response.payload.get("fixed")),
            }
            if record["fixed"]:
                record["x_hex"] = response.payload["x_hex"]
                record["y_hex"] = response.payload["y_hex"]
            fixes.append(record)
    return fixes


def diff_fixes(
    log: ReplayLog, replayed: List[Dict[str, Any]]
) -> List[str]:
    """Every divergence between recorded and replayed fixes.

    Returns an empty list when the service reproduced the batch run
    byte for byte (same windows fixed, same ``float.hex`` coordinates).
    """
    recorded = [e for e in log.events if e["kind"] == "close"]
    problems: List[str] = []
    if len(recorded) != len(replayed):
        problems.append(
            "close count mismatch: recorded %d, replayed %d"
            % (len(recorded), len(replayed))
        )
        return problems
    for want, got in zip(recorded, replayed):
        where = "robot %s window %s" % (want["robot"], want["window"])
        if (want["robot"], want["window"]) != (got["robot"], got["window"]):
            problems.append(
                "%s: replay visited robot %s window %s instead"
                % (where, got["robot"], got["window"])
            )
            continue
        if bool(want["fixed"]) != bool(got["fixed"]):
            problems.append(
                "%s: fixed=%s in batch, fixed=%s in service"
                % (where, want["fixed"], got["fixed"])
            )
            continue
        if want["fixed"]:
            for axis in ("x_hex", "y_hex"):
                if want[axis] != got[axis]:
                    problems.append(
                        "%s: %s differs (batch %s, service %s)"
                        % (where, axis, want[axis], got[axis])
                    )
    return problems
