"""Deterministic chaos harness: crash the service, demand the same bytes.

The durability claim this module gates (``repro chaos``, and the CI
``chaos-smoke`` job): a recorded batch scenario replayed through a
**live TCP server** produces byte-identical fixes *even while faults
fire mid-stream*.  Four fault kinds, drawn from a seeded schedule:

- ``kill_shard`` — cancel the tenant's shard worker task **and wipe the
  shard's live sessions** (simulated process-memory loss); the shard
  supervisor must revive the worker and re-hydrate from checkpoints.
- ``sever`` — abort the client's TCP connection with replies in flight;
  the client's retry policy must reconnect and the server's reply cache
  must dedup whatever the client re-sends.
- ``evict`` — advance the injectable session clock past the TTL and
  sweep, forcing a checkpoint-then-evict; the driver resumes via its
  token.
- ``delay`` — advance the injectable clock by less than the TTL (time
  passes, nothing may break).

Faults fire at *request boundaries* (the schedule indexes the driver's
global request counter), so kills land mid-window as naturally as
between windows — including in the middle of an earlier fault's
*retry*.  The driver recovers with **window-granularity retries**: each
robot window (open → observes → close) is built once with
client-stamped rids and re-sent wholesale when the session signals
state loss (``unknown_tenant`` → re-hello with the resume token;
``buffered: false`` on an observe → the window is gone, re-open it;
``window_incomplete`` on the close → a rehydration rolled part of the
window back between observes, re-send the unit).  Every close carries
``expected`` (the unit's observation count), so a partially-rolled-back
window can never close short and silently diverge.
The idempotency analysis for why any interleaving of these retries is
byte-identical lives in DESIGN.md's durability section.

Everything is seeded — the schedule (``numpy`` generator), the client's
backoff jitter, the scenario itself — so a red chaos run reproduces
exactly from its seed.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.serve.client import (
    RetryPolicy,
    ServeClient,
    TransportError,
    ensure_ok,
)
from repro.serve.protocol import (
    HelloRequest,
    ObserveRequest,
    Request,
    WindowRequest,
)
from repro.serve.replay import ReplayLog, diff_fixes
from repro.serve.server import LocalizationServer, ServeConfig, ServiceCore
from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "ChaosEvent",
    "ChaosSchedule",
    "ChaosReport",
    "SteppedClock",
    "run_chaos",
]

#: Per-window retry ceiling; a window that cannot complete in this many
#: attempts means recovery is broken, and the harness should say so
#: loudly instead of spinning.
MAX_WINDOW_ATTEMPTS = 8

FAULT_KINDS = ("kill_shard", "sever", "evict", "delay")


class SteppedClock:
    """A manually-advanced monotonic clock (the service's injectable
    time source during chaos runs — evictions happen when the *harness*
    says time passed, not when the wall says so)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault.

    Attributes:
        at_request: fire just before the driver sends its
            ``at_request``-th request (1-based, global across windows).
        kind: one of :data:`FAULT_KINDS`.
    """

    at_request: int
    kind: str


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded, reproducible fault schedule.

    Attributes:
        seed: the generator seed (also reused for client jitter).
        events: faults ordered by ``at_request``.
    """

    seed: int
    events: List[ChaosEvent] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        seed: int,
        n_requests: int,
        kills: int = 1,
        severs: int = 2,
        evicts: int = 1,
        delays: int = 1,
    ) -> "ChaosSchedule":
        """Draw fault positions without replacement over the request
        stream and shuffle the kinds across them."""
        kinds = (["kill_shard"] * kills + ["sever"] * severs
                 + ["evict"] * evicts + ["delay"] * delays)
        total = len(kinds)
        if total == 0:
            return cls(seed=seed, events=[])
        # Positions start at 2: the driver's first request is the hello,
        # and a fault before it would only test the connect path twice.
        low, high = 2, max(3, n_requests + 1)
        if high - low < total:
            raise ValueError(
                "schedule wants %d faults but the stream has only %d "
                "request slots" % (total, high - low)
            )
        rng = np.random.default_rng(seed)
        positions = sorted(
            int(p) for p in rng.choice(
                np.arange(low, high), size=total, replace=False
            )
        )
        rng.shuffle(kinds)
        return cls(seed=seed, events=[
            ChaosEvent(at_request=position, kind=kind)
            for position, kind in zip(positions, kinds)
        ])

    @classmethod
    def for_log(cls, log: ReplayLog, seed: int, **kwargs) -> "ChaosSchedule":
        """A schedule sized to a replay log's full request stream."""
        return cls.generate(seed, n_requests=len(log.events) + 1, **kwargs)


@dataclass
class ChaosReport:
    """What a chaos run did and whether the bytes survived.

    ``ok`` is the gate: every fault injected *and* zero fix
    divergences.
    """

    seed: int
    ok: bool
    problems: List[str]
    faults_injected: int
    faults_total: int
    window_retries: int
    rehellos: int
    reconnects: int
    fixes_fixed: int
    closes_total: int
    service: Dict[str, float]
    #: Trace id of the first diverging fix (gate failure forensics) and
    #: its recorded spans — chaos runs trace ``always`` by default, so
    #: the offending request's per-hop timeline is available post-mortem.
    divergent_trace: Optional[str] = None
    divergent_spans: List[Dict[str, Any]] = field(default_factory=list)

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            "[chaos %s] seed=%d faults=%d/%d retries=%d rehellos=%d "
            "reconnects=%d fixes=%d/%d divergences=%d"
            % (status, self.seed, self.faults_injected, self.faults_total,
               self.window_retries, self.rehellos, self.reconnects,
               self.fixes_fixed, self.closes_total, len(self.problems))
        )


class _FaultInjector:
    """Applies scheduled faults to a live server + client pair."""

    def __init__(
        self,
        core: ServiceCore,
        clock: SteppedClock,
        client: ServeClient,
        tenant: str,
        journal: List[Dict[str, Any]],
    ) -> None:
        self._core = core
        self._clock = clock
        self._client = client
        self._tenant = tenant
        self._journal = journal
        self.injected = 0

    async def fire(self, event: ChaosEvent) -> None:
        self._journal.append({
            "kind": "fault", "fault": event.kind,
            "at_request": event.at_request,
        })
        if event.kind == "kill_shard":
            await self._kill_shard()
        elif event.kind == "sever":
            self._client.abort()
        elif event.kind == "evict":
            self._clock.advance(self._core.config.session_ttl_s + 1.0)
            for shard in self._core.shards:
                shard.sweep_idle_sessions()
        elif event.kind == "delay":
            self._clock.advance(
                max(0.5, self._core.config.session_ttl_s / 4.0)
            )
        else:
            raise ValueError("unknown fault kind %r" % event.kind)
        self.injected += 1

    async def _kill_shard(self) -> None:
        shard = self._core.shard_for(self._tenant)
        task = shard.worker_task
        # Memory loss first, then the crash: the revived worker must
        # find nothing and rebuild purely from checkpoints.
        shard.sessions.clear()
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        # One loop turn for the supervisor's done-callback to revive.
        await asyncio.sleep(0)


class _ChaosDriver:
    """Replays a log through a faulty service, one window at a time."""

    def __init__(
        self,
        client: ServeClient,
        log: ReplayLog,
        tenant: str,
        schedule: ChaosSchedule,
        injector: _FaultInjector,
        journal: List[Dict[str, Any]],
    ) -> None:
        self._client = client
        self._log = log
        self._tenant = tenant
        self._faults = list(schedule.events)
        self._next_fault = 0
        self._injector = injector
        self._journal = journal
        self._requests_sent = 0
        self._resume_token: Optional[str] = None
        self.window_retries = 0
        self.rehellos = 0
        self.fixes: List[Dict[str, Any]] = []

    async def run(self) -> List[Dict[str, Any]]:
        await self._hello(resume=None)
        opens: Dict[int, Dict[str, Any]] = {}
        beacons: Dict[int, List[Dict[str, Any]]] = {}
        for event in self._log.events:
            robot = event["robot"]
            kind = event["kind"]
            if kind == "open":
                opens[robot] = event
                beacons[robot] = []
            elif kind == "beacon":
                beacons.setdefault(robot, []).append(event)
            elif kind == "close":
                await self._drive_window(
                    robot,
                    opens.pop(robot, {"t": 0.0}),
                    beacons.pop(robot, []),
                    event,
                )
        return self.fixes

    # -- one window ----------------------------------------------------------

    async def _drive_window(self, robot, open_event, beacon_events,
                            close_event) -> None:
        """Send open → observes → close as a retryable unit.

        Every request is rid-stamped exactly once, so a retry re-sends
        the *same* rids and the session's reply cache dedups whatever
        already executed.  The unit restarts from its open whenever the
        session reports state loss; see the module docstring.
        """
        tenant = self._tenant
        stamp = self._stamp
        open_request = stamp(WindowRequest(
            tenant=tenant, robot=robot, event="open",
            t=open_event.get("t", 0.0),
        ))
        observe_requests = [
            stamp(ObserveRequest(
                tenant=tenant,
                robot=robot,
                seq=beacon["seq"],
                x=beacon["x"],
                y=beacon["y"],
                rssi_dbm=beacon["rssi_dbm"],
                anchor_id=beacon.get("anchor_id"),
                t=beacon.get("t", 0.0),
            ))
            for beacon in beacon_events
        ]
        close_request = stamp(WindowRequest(
            tenant=tenant, robot=robot, event="close",
            t=close_event.get("t", 0.0),
            # Completeness guard: a crash that rolls the pending buffer
            # back mid-retry must surface as window_incomplete, never as
            # a short (silently divergent) close.
            expected=len(observe_requests),
        ))
        for attempt in range(1, MAX_WINDOW_ATTEMPTS + 1):
            response = await self._try_window(
                open_request, observe_requests, close_request
            )
            if response is not None:
                self._record_close(close_event, close_request, response)
                return
            self.window_retries += 1
            self._journal.append({
                "kind": "window_retry", "robot": robot,
                "window": close_event.get("window"), "attempt": attempt,
                "rid": close_request.rid, "trace": close_request.trace,
            })
        raise RuntimeError(
            "window for robot %s did not complete in %d attempts"
            % (robot, MAX_WINDOW_ATTEMPTS)
        )

    async def _try_window(self, open_request, observe_requests,
                          close_request):
        """One attempt; the close Response on success, None to retry."""
        response = await self._send(open_request)
        if not response.ok:
            await self._recover(response)
            return None
        for request in observe_requests:
            response = await self._send(request)
            if not response.ok:
                await self._recover(response)
                return None
            if not response.payload.get("buffered"):
                # The open this observe rode on is gone (restore rolled
                # the lane back): re-run the whole unit.
                return None
        response = await self._send(close_request)
        if not response.ok:
            await self._recover(response)
            return None
        return response

    async def _recover(self, response) -> None:
        """React to an error reply inside a window attempt."""
        if response.error == "unknown_tenant":
            await self._hello(resume=self._resume_token)
            self.rehellos += 1
            return
        if response.error in ("no_open_window", "window_incomplete",
                              "overloaded", "tenant_overloaded",
                              "shutting_down"):
            # Transient or state-loss shapes: the window retry handles
            # them (shed replies clear once the revived worker drains).
            return
        ensure_ok(response)  # anything else is a real bug: raise

    # -- plumbing ------------------------------------------------------------

    def _stamp(self, request: Request) -> Request:
        """rid + trace, both minted exactly once per logical request —
        every retry of the window unit re-sends the same ids, so the
        reply cache dedups it and the trace correlates it."""
        return self._client.stamp_trace(self._client.stamp_rid(request))

    async def _send(self, request: Request):
        """Send one request, firing any fault scheduled at this slot."""
        self._requests_sent += 1
        while (self._next_fault < len(self._faults)
               and self._faults[self._next_fault].at_request
               <= self._requests_sent):
            await self._injector.fire(self._faults[self._next_fault])
            self._next_fault += 1
        return await self._client.request(request)

    async def _hello(self, resume: Optional[str]) -> None:
        log = self._log
        hello_request = self._stamp(HelloRequest(
            tenant=self._tenant,
            calibration_seed=log.calibration_seed,
            calibration_samples=log.calibration_samples,
            area_side_m=log.area_side_m,
            grid_resolution_m=log.grid_resolution_m,
            min_beacons_for_fix=log.min_beacons_for_fix,
            lut=log.lut,
            resume=resume,
        ))
        response = ensure_ok(await self._send(hello_request))
        token = response.payload.get("resume")
        if token:
            self._resume_token = token
        self._journal.append({
            "kind": "hello", "resume_sent": resume is not None,
            "restored": bool(response.payload.get("restored")),
            "rid": hello_request.rid, "trace": hello_request.trace,
        })

    def _record_close(self, close_event, close_request, response) -> None:
        record = {
            "robot": close_event["robot"],
            "window": close_event["window"],
            "fixed": bool(response.payload.get("fixed")),
            "rid": close_request.rid,
            "trace": close_request.trace,
        }
        if record["fixed"]:
            record["x_hex"] = response.payload["x_hex"]
            record["y_hex"] = response.payload["y_hex"]
        self.fixes.append(record)


async def run_chaos(
    log: ReplayLog,
    schedule: ChaosSchedule,
    tenant: str = "chaos",
    config: Optional[ServeConfig] = None,
    chaos_log_path=None,
    trace_log_path=None,
    registry=None,
) -> ChaosReport:
    """Run one chaos schedule against a live TCP server; gate the bytes.

    Boots a :class:`LocalizationServer` on an ephemeral port (with a
    :class:`SteppedClock` so evictions are harness-driven), replays the
    log through a retrying :class:`ServeClient` while injecting the
    schedule's faults, drains the server, and diffs the collected fixes
    against the log's recorded batch fixes.

    Args:
        log: a recorded batch run (see
            :func:`~repro.serve.replay.record_replay_log`).
        schedule: the fault schedule (see :meth:`ChaosSchedule.for_log`).
        tenant: tenant name for the run.
        config: server knobs; defaults to 2 shards, checkpointing and
            supervision on, and a sweep interval long enough that only
            the harness triggers evictions.
        chaos_log_path: optional JSONL path recording every fault,
            retry and re-hello (the CI job uploads it as an artifact).
        trace_log_path: optional trace-JSONL path dumping the run's
            recorded spans (``repro trace`` reads it).
        registry: optional metrics registry to share.

    Returns:
        A :class:`ChaosReport`; ``report.ok`` is the gate.
    """
    clock = SteppedClock()
    if config is None:
        config = ServeConfig(
            port=0,
            n_shards=2,
            session_ttl_s=60.0,
            sweep_interval_s=3600.0,
            # Forensics beats sampling here: a diverging fix's trace
            # must be in the buffer, whichever request it was.
            trace_mode="always",
        )
    if not config.checkpointing or not config.supervise:
        raise ValueError(
            "chaos runs need checkpointing and supervision enabled"
        )
    core = ServiceCore(
        config=config,
        registry=registry if registry is not None else MetricsRegistry(),
        clock=clock,
    )
    server = LocalizationServer(core)
    journal: List[Dict[str, Any]] = []
    await server.start()
    try:
        client = ServeClient(
            host=config.host,
            port=server.port,
            retry=RetryPolicy(
                max_attempts=6,
                base_delay_s=0.005,
                max_delay_s=0.05,
                seed=schedule.seed,
            ),
            trace_prefix="chaos%d" % schedule.seed,
        )
        await client.connect()
        driver = _ChaosDriver(
            client, log, tenant, schedule,
            _FaultInjector(core, clock, client, tenant, journal),
            journal,
        )
        try:
            fixes = await driver.run()
        finally:
            try:
                await client.close()
            except TransportError:
                pass
        problems = diff_fixes(log, fixes)
        injector = driver._injector
    finally:
        await server.drain()
    divergent_trace = (
        _first_divergent_trace(log, fixes) if problems else None
    )
    divergent_spans = (
        core.tracer.spans_for(divergent_trace)
        if divergent_trace is not None else []
    )
    service = core.stats()
    report = ChaosReport(
        seed=schedule.seed,
        ok=(not problems
            and injector.injected == len(schedule.events)),
        problems=problems,
        faults_injected=injector.injected,
        faults_total=len(schedule.events),
        window_retries=driver.window_retries,
        rehellos=driver.rehellos,
        reconnects=client.reconnects,
        fixes_fixed=sum(1 for fix in fixes if fix["fixed"]),
        closes_total=len(fixes),
        service={
            key: service.get(key, 0.0)
            for key in (
                "serve_shard_restarts",
                "serve_rehydrations",
                "serve_replays_served",
                "serve_checkpoints_saved",
                "serve_checkpoints_loaded",
                "serve_sessions_evicted",
                "serve_sessions_restored",
            )
        },
        divergent_trace=divergent_trace,
        divergent_spans=divergent_spans,
    )
    # Both dumps hit the disk; hand them to a worker thread so the
    # (still-running) event loop is never stalled by file I/O.
    if chaos_log_path is not None:
        await asyncio.to_thread(
            _dump_chaos_log, chaos_log_path, schedule, journal, report
        )
    if trace_log_path is not None:
        from repro.obs.export import write_trace_jsonl

        await asyncio.to_thread(
            write_trace_jsonl, trace_log_path, core.tracer.records()
        )
    return report


def _first_divergent_trace(
    log: ReplayLog, replayed: List[Dict[str, Any]]
) -> Optional[str]:
    """The trace id of the first replayed close that diverges from the
    recorded batch fixes (mirrors :func:`diff_fixes`'s comparison)."""
    recorded = [e for e in log.events if e["kind"] == "close"]
    for want, got in zip(recorded, replayed):
        if (
            (want["robot"], want["window"])
            != (got["robot"], got["window"])
            or bool(want["fixed"]) != bool(got["fixed"])
            or (want["fixed"] and any(
                want[axis] != got[axis] for axis in ("x_hex", "y_hex")
            ))
        ):
            return got.get("trace")
    if len(replayed) > len(recorded):
        return replayed[len(recorded)].get("trace")
    return None


def _dump_chaos_log(path, schedule: ChaosSchedule,
                    journal: List[Dict[str, Any]],
                    report: ChaosReport) -> None:
    """JSONL: header, schedule, every journal line, final report."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(
            {"kind": "header", "seed": schedule.seed,
             "faults": [asdict(event) for event in schedule.events]},
            sort_keys=True) + "\n")
        for line in journal:
            handle.write(json.dumps(line, sort_keys=True) + "\n")
        handle.write(json.dumps(
            {"kind": "report", **asdict(report)}, sort_keys=True
        ) + "\n")
