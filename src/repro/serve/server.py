"""The streaming localization server: accept, route, degrade, expose.

Two layers:

- :class:`ServiceCore` is the transport-free heart — shards, sessions,
  the warm-start calibration store and the telemetry registry.  Tests
  and the in-process client drive it directly; the TCP front end is a
  thin shell around it.
- :class:`LocalizationServer` owns the socket: newline-delimited JSON
  request/response streams (pipelining allowed, responses in request
  order per connection) plus plain-HTTP ``GET /metrics`` (Prometheus
  exposition), ``GET /healthz`` (process liveness) and ``GET /readyz``
  (traffic readiness: started, not draining, every worker alive) — one
  port serves robots, scrapers and orchestration probes.

Backpressure stack, outermost first:

1. a slow *consumer* (not reading its responses) fills the bounded
   per-connection reply queue, which pauses that connection's reader —
   TCP flow control pushes back to the sender; nobody else is affected;
2. a hot *tenant* exhausts its per-tenant in-flight budget and gets
   ``tenant_overloaded`` rejections while its neighbours keep flowing;
3. a saturated *shard* sheds everything beyond its bounded queue with
   constant-cost ``overloaded`` replies rather than queueing latency.

Durability stack (``checkpointing`` on, the default): a
:class:`~repro.serve.checkpoint.CheckpointStore` shared by every shard
(persisted through the warm-start cache when one is given), one
:class:`~repro.serve.supervisor.ShardSupervisor` per shard reviving
dead workers and re-hydrating lost sessions, and a graceful
:meth:`ServiceCore.drain` that refuses new work, finishes queued work
and checkpoints every session before :meth:`ServiceCore.stop`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.serve.protocol import (
    ProtocolError,
    Request,
    Response,
    encode_response,
    error_response,
    parse_request,
)
from repro.obs.oplog import OpsLog
from repro.obs.trace import TRACE_MODES, RequestTracer, TraceConfig
from repro.serve.checkpoint import CheckpointStore
from repro.serve.session import (
    CalibrationStore,
    SessionLimits,
    TenantSession,
)
from repro.serve.shard import Shard, shard_index_for
from repro.serve.supervisor import ShardSupervisor
from repro.telemetry.export import prometheus_text
from repro.telemetry.registry import DURATION_EDGES_S, MetricsRegistry

__all__ = ["ServeConfig", "ServiceCore", "LocalizationServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Service deployment knobs.

    Attributes:
        host: bind address.
        port: bind port (0 = ephemeral, reported after start).
        n_shards: worker event loops; tenants hash-partition over them.
        queue_limit: bounded request-queue depth per shard.
        tenant_inflight_limit: queued requests one tenant may hold in
            its shard before being shed.
        session_ttl_s: idle seconds before a tenant session is evicted
            (0 disables eviction).
        sweep_interval_s: idle-eviction sweep cadence per shard.
        max_robots_per_tenant: estimator lanes one session may hold.
        max_pending_observations: buffered observations per robot per
            beacon window.
        reply_queue_limit: per-connection response backlog before the
            reader pauses (slow-consumer backpressure).
        checkpointing: checkpoint sessions on window close / eviction /
            drain and re-hydrate them after crashes (see
            :mod:`repro.serve.checkpoint`).  Off = the pre-durability
            behaviour: a crash or eviction loses the session.
        supervise: revive dead shard workers automatically.
        trace_mode: request tracing — ``off``, ``sampled`` (head-sample
            one request in ``trace_sample_every`` plus every request
            slower than ``trace_slow_ms``; the always-on-cheap default)
            or ``always`` (keep every trace; benchmarks and chaos
            forensics).  Tracing never touches science payloads — the
            replay gate proves byte-identity in every mode.
        trace_sample_every: head-sampling period in ``sampled`` mode.
        trace_slow_ms: tail-sampling latency threshold (ms) in
            ``sampled`` mode.
        trace_max_spans: span-buffer capacity (oldest evicted first).
    """

    host: str = "127.0.0.1"
    port: int = 0
    n_shards: int = 4
    queue_limit: int = 256
    tenant_inflight_limit: int = 32
    session_ttl_s: float = 300.0
    sweep_interval_s: float = 1.0
    max_robots_per_tenant: int = 256
    max_pending_observations: int = 1024
    reply_queue_limit: int = 128
    checkpointing: bool = True
    supervise: bool = True
    trace_mode: str = "sampled"
    trace_sample_every: int = 128
    trace_slow_ms: float = 25.0
    trace_max_spans: int = 50_000

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError("port must be in [0, 65535]")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.reply_queue_limit < 1:
            raise ValueError("reply_queue_limit must be >= 1")
        if self.trace_mode not in TRACE_MODES:
            raise ValueError(
                "trace_mode must be one of %r" % (TRACE_MODES,)
            )

    def trace_config(self) -> TraceConfig:
        """The knobs as an :class:`~repro.obs.trace.TraceConfig`."""
        return TraceConfig(
            mode=self.trace_mode,
            head_sample_every=self.trace_sample_every,
            slow_ms=self.trace_slow_ms,
            max_spans=self.trace_max_spans,
        )


class ServiceCore:
    """Routing core: shards, sessions, calibration store, telemetry.

    Args:
        config: deployment knobs.
        registry: telemetry registry (a fresh one by default; the
            ``/metrics`` endpoint renders it).
        warm_store: optional
            :class:`~repro.orchestrator.cache.ResultCache` used as the
            calibration warm-start store.
        clock: monotonic time source shared by shards and sessions
            (injectable so TTL tests never sleep).
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        warm_store=None,
        clock=None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock if clock is not None else time.monotonic
        # Wall-clock observability (repro.obs) — outside the sim core's
        # virtual-time contract, inert toward science payloads.
        self.tracer = RequestTracer(
            self.config.trace_config(), registry=self.registry
        )
        self.ops = OpsLog()
        self.calibrations = CalibrationStore(
            warm_store=warm_store, registry=self.registry
        )
        # Checkpoints share the warm-start cache's disk layer when one
        # is given (distinct ``ckpt-`` prefix, typed loads), so a single
        # --cache flag buys both calibration reuse and crash durability.
        self.checkpoints: Optional[CheckpointStore] = (
            CheckpointStore(cache=warm_store, registry=self.registry)
            if self.config.checkpointing
            else None
        )
        self._limits = SessionLimits(
            max_robots=self.config.max_robots_per_tenant,
            max_pending_observations=self.config.max_pending_observations,
        )
        self.shards: List[Shard] = [
            Shard(
                index=i,
                session_factory=self._build_session,
                queue_limit=self.config.queue_limit,
                tenant_inflight_limit=self.config.tenant_inflight_limit,
                session_ttl_s=self.config.session_ttl_s,
                sweep_interval_s=self.config.sweep_interval_s,
                clock=self._clock,
                registry=self.registry,
                checkpoints=self.checkpoints,
                ops=self.ops,
            )
            for i in range(self.config.n_shards)
        ]
        self.supervisors: List[ShardSupervisor] = [
            ShardSupervisor(
                shard,
                n_shards=self.config.n_shards,
                checkpoints=self.checkpoints,
                registry=self.registry,
                ops=self.ops,
            )
            for shard in self.shards
        ] if self.config.supervise else []
        self._started = False
        self._draining = False

    def _build_session(self, hello) -> TenantSession:
        return TenantSession(
            hello,
            table=self.calibrations.table_for(hello),
            limits=self._limits,
            clock=self._clock,
            registry=self.registry,
            checkpoints=self.checkpoints,
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start every shard worker (requires a running event loop)."""
        if self._started:
            return
        for shard in self.shards:
            shard.start()
        for supervisor in self.supervisors:
            supervisor.arm()
        self._started = True
        self._draining = False

    async def drain(self) -> int:
        """Graceful-stop prelude: shed new work, finish queued work,
        checkpoint every session.  Returns total checkpoints written.

        Safe to call more than once; :meth:`stop` still performs the
        actual teardown.
        """
        self._draining = True
        for supervisor in self.supervisors:
            supervisor.disarm()
        flushed = 0
        for shard in self.shards:
            flushed += await shard.drain()
        self.registry.counter("serve_drains_total").inc()
        return flushed

    async def stop(self) -> None:
        for supervisor in self.supervisors:
            supervisor.disarm()
        for shard in self.shards:
            await shard.stop()
        self._started = False

    # -- health --------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def healthy(self) -> bool:
        """Process liveness: the core object is intact (``/healthz``)."""
        return True

    def ready(self) -> bool:
        """Traffic readiness: started, not draining, workers alive."""
        if not self._started or self._draining:
            return False
        return all(
            shard.worker_task is not None and not shard.worker_task.done()
            for shard in self.shards
        )

    # -- routing -------------------------------------------------------------

    def shard_for(self, tenant: str) -> Shard:
        return self.shards[shard_index_for(tenant, len(self.shards))]

    def submit(self, request: Request) -> "asyncio.Future":
        """Route one request to its tenant's shard (may shed).

        Returns a future resolving to the :class:`Response`; latency
        from submission to resolution lands in the
        ``serve_request_latency_s`` histogram.
        """
        future, _trace_id = self.submit_traced(request)
        return future

    def submit_traced(self, request: Request):
        """:meth:`submit`, also returning the trace id to echo.

        The id is the request's own ``trace`` when the client stamped
        one (echoed even with tracing off — correlation must not depend
        on server sampling), a server-minted id when tracing is on, and
        ``None`` otherwise.  The root span opens here and closes on the
        future's resolution; the sampling keep/drop decision happens at
        that close (see :meth:`~repro.obs.trace.RequestTracer.finish`).
        """
        self.registry.counter("serve_requests_total").inc()
        started = self._clock()
        active = self.tracer.begin(request)
        trace_id = (
            active.trace_id if active is not None
            else getattr(request, "trace", None)
        )
        future = self.shard_for(getattr(request, "tenant", "")).submit(
            request, trace=active
        )
        histogram = self.registry.histogram(
            "serve_request_latency_s", DURATION_EDGES_S
        )
        tracer = self.tracer

        def _observe(done: "asyncio.Future") -> None:
            if done.cancelled():
                return
            histogram.observe(self._clock() - started)
            if active is not None:
                response = (
                    done.result() if done.exception() is None else None
                )
                tracer.finish(active, response)

        future.add_done_callback(_observe)
        return future, trace_id

    async def handle(self, request: Request) -> Response:
        """Submit and await one request (the in-process client path)."""
        return await self.submit(request)

    # -- observability -------------------------------------------------------

    def metrics_text(self) -> str:
        """The registry in Prometheus exposition format."""
        self._refresh_gauges()
        return prometheus_text(self.registry)

    def _refresh_gauges(self) -> None:
        sessions = sum(len(shard.sessions) for shard in self.shards)
        robots = sum(
            session.n_robots
            for shard in self.shards
            for session in shard.sessions.values()
        )
        self.registry.gauge("serve_sessions_active").set(sessions)
        self.registry.gauge("serve_robots_active").set(robots)
        self.registry.gauge("serve_robots_active_peak").set_max(robots)
        self.registry.gauge("serve_shards").set(len(self.shards))

    def stats(self) -> Dict[str, float]:
        """Flat service counters (CLI summaries, tests)."""
        self._refresh_gauges()
        out = dict(self.registry.metrics())
        out["serve_shed_total_all"] = float(
            sum(shard.shed for shard in self.shards)
        )
        out["serve_processed_total"] = float(
            sum(shard.processed for shard in self.shards)
        )
        return out


class LocalizationServer:
    """The TCP front end: NDJSON request streams plus HTTP ``/metrics``.

    Args:
        core: the routing core (one core per server).
    """

    def __init__(self, core: ServiceCore) -> None:
        self.core = core
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> Optional[int]:
        """The bound port once started (resolves ``port=0`` binds)."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the socket and start the shard workers."""
        if self._server is not None:
            return
        self.core.start()
        config = self.core.config
        self._server = await asyncio.start_server(
            self._handle_connection, host=config.host, port=config.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.core.stop()

    async def drain(self) -> None:
        """Graceful shutdown: close the listener (existing connections
        finish their in-flight requests), flush checkpoints, stop."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.core.drain()
        await self.core.stop()

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        registry = self.core.registry
        registry.counter("serve_connections_total").inc()
        replies: "asyncio.Queue" = asyncio.Queue(
            maxsize=self.core.config.reply_queue_limit
        )
        writer_task = asyncio.get_running_loop().create_task(
            self._write_replies(replies, writer)
        )
        try:
            await self._read_requests(reader, writer, replies)
        finally:
            await replies.put(None)  # sentinel: flush and stop
            try:
                await writer_task
            except Exception:
                pass
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_requests(self, reader, writer, replies) -> None:
        first = True
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            if not line:
                return
            if first and line.startswith(b"GET "):
                await self._serve_http(line, reader, writer)
                return
            first = False
            stripped = line.strip()
            if not stripped:
                continue
            try:
                request = parse_request(stripped)
            except ProtocolError as exc:
                self.core.registry.counter("serve_protocol_errors").inc()
                done = asyncio.get_running_loop().create_future()
                done.set_result(error_response("bad_request", str(exc)))
                await replies.put((done, None))
                continue
            # Bounded reply queue: when the consumer stops reading its
            # responses this put blocks, pausing the reader — TCP
            # backpressure all the way to the sender.
            await replies.put(self.core.submit_traced(request))

    async def _write_replies(self, replies, writer) -> None:
        while True:
            item = await replies.get()
            if item is None:
                return
            pending, trace_id = item
            response = await pending
            try:
                # The trace id is spliced onto the wire line here, never
                # onto the Response: cached replies are shared across
                # retries that carry different trace ids.
                writer.write(
                    encode_response(response, trace=trace_id)
                    .encode("utf-8") + b"\n"
                )
                await writer.drain()
            except (ConnectionError, RuntimeError):
                return

    # -- HTTP scrape ---------------------------------------------------------

    async def _serve_http(self, first_line: bytes, reader, writer) -> None:
        """Answer one HTTP request and close.

        Routes: ``/metrics`` (Prometheus exposition), ``/healthz``
        (liveness: 200 while the process can answer at all) and
        ``/readyz`` (readiness: 200 only while started, not draining
        and every shard worker is alive — 503 otherwise, which is how
        an orchestrator parks traffic during drain or a revive).
        """
        try:
            while True:  # drain the header block
                header = await asyncio.wait_for(reader.readline(), timeout=2.0)
                if header in (b"\r\n", b"\n", b""):
                    break
        except (asyncio.TimeoutError, ConnectionError):
            return
        parts = first_line.decode("latin-1").split()
        path = parts[1] if len(parts) >= 2 else "/"
        ctype = b"Content-Type: text/plain\r\n"
        if path in ("/metrics", "/metrics/"):
            self.core.registry.counter("serve_http_scrapes").inc()
            body = self.core.metrics_text().encode("utf-8")
            status = b"HTTP/1.1 200 OK\r\n"
            ctype = b"Content-Type: text/plain; version=0.0.4\r\n"
        elif path in ("/healthz", "/healthz/"):
            self.core.registry.counter("serve_health_probes").inc()
            body = b"ok\n" if self.core.healthy() else b"unhealthy\n"
            status = (b"HTTP/1.1 200 OK\r\n" if self.core.healthy()
                      else b"HTTP/1.1 503 Service Unavailable\r\n")
        elif path in ("/readyz", "/readyz/"):
            self.core.registry.counter("serve_ready_probes").inc()
            if self.core.ready():
                body, status = b"ready\n", b"HTTP/1.1 200 OK\r\n"
            else:
                body = (b"draining\n" if self.core.draining
                        else b"not ready\n")
                status = b"HTTP/1.1 503 Service Unavailable\r\n"
        else:
            body = b"paths served here: /metrics /healthz /readyz\n"
            status = b"HTTP/1.1 404 Not Found\r\n"
        try:
            writer.write(
                status + ctype
                + b"Content-Length: %d\r\n" % len(body)
                + b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
        except ConnectionError:
            pass
