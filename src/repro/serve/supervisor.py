"""Shard supervision: restart dead workers, re-hydrate lost sessions.

A shard worker is a plain asyncio task, and a defect (or a chaos-harness
kill) can end it while the server keeps accepting connections — without
supervision every tenant routed to that shard would hang until their
client times out.  :class:`ShardSupervisor` watches one shard's worker
task and, on any *unexpected* death (an escaped exception, or a
cancellation that the shard did not initiate):

1. restarts the worker on the same queue — requests already queued are
   processed by the replacement, none are dropped;
2. re-hydrates any session the crash lost from its latest checkpoint
   (tenants are matched to the shard by the same stable hash the router
   uses, so a supervisor never resurrects another shard's tenant);
3. counts the event (``serve_shard_restarts``, ``serve_rehydrations``)
   so /metrics shows a flapping shard instead of hiding it.

An *expected* death — :meth:`~repro.serve.shard.Shard.stop` during
shutdown or drain — is ignored: supervision must never fight an orderly
exit.  The supervisor is deliberately synchronous and in-loop (a done
callback, not a polling task): restart latency is one event-loop step,
and there is no watchdog cadence to tune.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.obs.oplog import NULL_OPS_LOG
from repro.serve.shard import Shard, shard_index_for
from repro.telemetry.registry import NULL_REGISTRY

__all__ = ["ShardSupervisor"]


class ShardSupervisor:
    """Watches one shard's worker task and revives it on crash.

    Args:
        shard: the supervised shard.
        n_shards: total shard count (tenant → shard routing for
            re-hydration).
        checkpoints: the server's
            :class:`~repro.serve.checkpoint.CheckpointStore`, or None
            (restart-only supervision: workers revive, lost sessions
            stay lost until a client resumes them).
        registry: telemetry registry.
        ops: structured ops-event log (:class:`~repro.obs.oplog.OpsLog`)
            — restarts and re-hydrations are exactly the events an
            operator pivots to from a slow trace.
    """

    def __init__(
        self,
        shard: Shard,
        n_shards: int,
        checkpoints=None,
        registry=NULL_REGISTRY,
        ops=NULL_OPS_LOG,
    ) -> None:
        self._shard = shard
        self._n_shards = n_shards
        self._checkpoints = checkpoints
        self._registry = registry
        self._ops = ops
        self._armed = False
        self.restarts = 0
        self.rehydrations = 0
        self.last_error: Optional[str] = None

    def arm(self) -> None:
        """Start watching the shard's current worker task."""
        self._armed = True
        self._watch(self._shard.worker_task)

    def disarm(self) -> None:
        """Stop supervising (orderly shutdown path)."""
        self._armed = False

    def _watch(self, task: Optional[asyncio.Task]) -> None:
        if task is not None:
            task.add_done_callback(self._on_worker_done)

    def _on_worker_done(self, task: asyncio.Task) -> None:
        if not self._armed or self._shard.stopping:
            return
        if task.cancelled():
            self.last_error = "cancelled"
        else:
            exc = task.exception()
            if exc is None:
                # A worker loop never returns; treat a clean return as
                # a crash too (the loop invariant was broken somehow).
                self.last_error = "returned"
            else:
                self.last_error = "%s: %s" % (type(exc).__name__, exc)
        self._revive()

    def _revive(self) -> None:
        shard = self._shard
        self.restarts += 1
        self._registry.counter("serve_shard_restarts").inc()
        self._ops.emit(
            "shard_restarted",
            shard=shard.index,
            restarts=self.restarts,
            error=self.last_error,
        )
        self._watch(shard.restart_worker())
        if self._checkpoints is None:
            return
        for tenant in self._checkpoints.tenants():
            if shard_index_for(tenant, self._n_shards) != shard.index:
                continue
            if tenant in shard.sessions:
                continue
            checkpoint = self._checkpoints.load_for_tenant(tenant)
            if checkpoint is None:
                continue
            try:
                shard.restore_session(checkpoint)
            except ValueError:
                # A stale checkpoint must not wedge the revive loop;
                # the tenant re-attaches via its own resume token.
                self._registry.counter("serve_resume_rejected").inc()
                continue
            self.rehydrations += 1
            self._registry.counter("serve_rehydrations").inc()
            self._ops.emit(
                "session_rehydrated",
                tenant=tenant,
                shard=shard.index,
                resume=checkpoint.fingerprint,
            )
