"""Reference clients for the localization service.

Two transports, one vocabulary:

- :class:`ServeClient` speaks the NDJSON wire protocol over TCP and is
  what an external robot bridge would embed.  It supports pipelining:
  ``send_*`` methods enqueue a request and return an awaitable, and the
  server guarantees responses arrive in request order per connection.
- :class:`InProcessClient` drives a :class:`~repro.serve.server.ServiceCore`
  directly — no sockets — which is what the replay gate, the unit tests
  and the quick benchmark mode use.  Both clients expose the identical
  convenience surface, so a test written against one runs against the
  other.

Error taxonomy — the two failure kinds demand opposite reactions:

- :class:`TransportError` (a ``ConnectionError`` subclass): the
  connection died and the reply's fate is unknown — **retryable**.  A
  :class:`ServeClient` built with a :class:`RetryPolicy` reconnects and
  retries these itself (capped exponential backoff, seeded jitter), and
  auto-assigns a ``rid`` to every request so the server's reply cache
  makes the retry idempotent (see :mod:`repro.serve.protocol`).
- :class:`ServiceError`: the server *answered* with an error response
  (``bad_request``, ``unknown_tenant``, ``overloaded``, ...) — **not
  retryable** by blind repetition; the caller must change something.
  Raised only by :func:`ensure_ok`; the ``request`` surface itself
  still returns error responses, because load-shedding replies are an
  expected outcome callers often want to count rather than catch.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from repro.serve.protocol import (
    ByeRequest,
    ConfidenceRequest,
    FixRequest,
    HelloRequest,
    ObserveRequest,
    PingRequest,
    ProtocolError,
    Request,
    Response,
    StatsRequest,
    WindowRequest,
    encode_request,
    parse_response,
)

__all__ = [
    "TransportError",
    "ServiceError",
    "RetryPolicy",
    "ensure_ok",
    "ServeClient",
    "InProcessClient",
]


class TransportError(ConnectionError):
    """The connection failed; the request's fate is unknown (retryable)."""


class ServiceError(RuntimeError):
    """The server answered with an error response (not retryable).

    Attributes:
        tag: the machine-readable error tag (``bad_request``, ...).
        response: the full error :class:`Response`.
    """

    def __init__(self, response: Response) -> None:
        detail = response.payload.get("detail")
        message = response.error or "error"
        if detail:
            message = "%s: %s" % (message, detail)
        super().__init__(message)
        self.tag = response.error
        self.response = response


def ensure_ok(response: Response) -> Response:
    """Return the response, or raise :class:`ServiceError` if it failed."""
    if not response.ok:
        raise ServiceError(response)
    return response


@dataclass(frozen=True)
class RetryPolicy:
    """Reconnect-and-retry behaviour for :class:`ServeClient`.

    Backoff for attempt *k* (1-based) is ``base_delay_s * 2**(k-1)``
    capped at ``max_delay_s``, plus a jitter drawn uniformly from
    ``[0, jitter * delay]`` by a seeded generator — deterministic in
    tests, yet de-synchronized across clients with distinct seeds (no
    reconnect stampede after a server restart).

    Attributes:
        max_attempts: total tries per request (1 = no retry).
        base_delay_s: backoff before the first retry.
        max_delay_s: backoff cap.
        jitter: jitter fraction of the capped delay.
        seed: jitter stream seed.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("delays must satisfy 0 <= base <= max")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def delay_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        delay = min(
            self.base_delay_s * (2.0 ** (attempt - 1)), self.max_delay_s
        )
        if self.jitter > 0:
            delay += self.jitter * delay * float(rng.random())
        return delay


class _RequestSurface:
    """The shared convenience vocabulary; subclasses implement ``request``."""

    async def request(self, request: Request) -> Response:
        raise NotImplementedError

    async def hello(self, tenant: str, **kwargs) -> Response:
        return await self.request(HelloRequest(tenant=tenant, **kwargs))

    async def window_open(self, tenant: str, robot: int,
                          t: float = 0.0) -> Response:
        return await self.request(
            WindowRequest(tenant=tenant, robot=robot, event="open", t=t)
        )

    async def window_close(self, tenant: str, robot: int, t: float = 0.0,
                           expected: Optional[int] = None) -> Response:
        return await self.request(WindowRequest(
            tenant=tenant, robot=robot, event="close", t=t,
            expected=expected,
        ))

    async def observe(
        self,
        tenant: str,
        robot: int,
        seq: int,
        x: float,
        y: float,
        rssi_dbm: float,
        anchor_id: Optional[int] = None,
        t: float = 0.0,
    ) -> Response:
        return await self.request(ObserveRequest(
            tenant=tenant, robot=robot, seq=seq, x=x, y=y,
            rssi_dbm=rssi_dbm, anchor_id=anchor_id, t=t,
        ))

    async def fix(self, tenant: str, robot: int) -> Response:
        return await self.request(FixRequest(tenant=tenant, robot=robot))

    async def confidence(self, tenant: str, robot: int) -> Response:
        return await self.request(
            ConfidenceRequest(tenant=tenant, robot=robot)
        )

    async def stats(self, tenant: str) -> Response:
        return await self.request(StatsRequest(tenant=tenant))

    async def bye(self, tenant: str) -> Response:
        return await self.request(ByeRequest(tenant=tenant))

    async def ping(self, tenant: str = "") -> Response:
        return await self.request(PingRequest(tenant=tenant))


class ServeClient(_RequestSurface):
    """NDJSON-over-TCP client.

    Use as an async context manager, or call :meth:`connect` /
    :meth:`close` explicitly.  ``request`` is send-then-await; for
    pipelined throughput use :meth:`send` to enqueue many requests and
    await the returned futures afterwards.

    With a :class:`RetryPolicy`, :meth:`request` survives connection
    loss: it reconnects (capped backoff, seeded jitter) and re-sends the
    *same* request — including the rid the client stamped on it — so
    the server's reply cache dedups a request whose first reply was
    lost in flight.  Only :meth:`request` retries; :meth:`send` is the
    raw pipelining surface and fails fast, because blindly re-sending
    one request of a pipelined burst would reorder the stream.

    Args:
        host: server address.
        port: server port.
        retry: reconnect/retry policy (None = fail fast).
        sleep: awaitable sleep used for backoff (injectable so retry
            tests never wait wall-clock time).
        trace_prefix: when set, :meth:`request` stamps every request
            with a client-minted trace id (``<prefix>-<n>``) unless the
            caller stamped one already.  Like the rid, the id is
            stamped *once* — every retry of a request carries the same
            trace id, and the server echoes it on the reply line, so
            retries of one logical request correlate end to end.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        retry: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], "asyncio.Future"]] = None,
        trace_prefix: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self._retry = retry
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._jitter_rng = np.random.default_rng(
            retry.seed if retry is not None else 0
        )
        self._rids = itertools.count(1)
        self._trace_prefix = trace_prefix
        self._traces = itertools.count(1)
        self.reconnects = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._inflight: "asyncio.Queue" = asyncio.Queue()
        self._pump: Optional[asyncio.Task] = None

    async def connect(self) -> "ServeClient":
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except OSError as exc:
            raise TransportError("connect failed: %s" % exc) from exc
        self._pump = asyncio.get_running_loop().create_task(
            self._pump_responses()
        )
        return self

    async def close(self) -> None:
        pump, self._pump = self._pump, None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
            self._writer = None
            self._reader = None
        if pump is not None:
            pump.cancel()
            try:
                await pump
            except asyncio.CancelledError:
                pass

    def abort(self) -> None:
        """Tear the connection down abruptly, mid-stream.

        Simulates a network cut (the chaos harness's ``sever`` fault):
        no FIN handshake, in-flight replies lost.  The next
        :meth:`request` sees a :class:`TransportError` and — with a
        retry policy — reconnects.
        """
        if self._writer is not None:
            self._writer.transport.abort()

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def send(self, request: Request) -> "asyncio.Future":
        """Enqueue one request; the future resolves with its response.

        Responses map to requests by order (the protocol guarantees
        per-connection ordering), which is what makes pipelining safe.
        """
        if self._writer is None:
            raise TransportError("client is not connected")
        future = asyncio.get_running_loop().create_future()
        await self._inflight.put(future)
        try:
            self._writer.write(
                encode_request(request).encode("utf-8") + b"\n"
            )
            await self._writer.drain()
        except (ConnectionError, RuntimeError) as exc:
            raise TransportError("send failed: %s" % exc) from exc
        return future

    def stamp_rid(self, request: Request) -> Request:
        """Assign this client's next rid (no-op if one is set already).

        Retrying callers stamp once and re-send the stamped request, so
        every retry carries the same rid.
        """
        if getattr(request, "rid", "absent") is None:
            return replace(request, rid=next(self._rids))
        return request

    def stamp_trace(self, request: Request) -> Request:
        """Mint this client's next trace id onto the request.

        No-op without a ``trace_prefix`` or when the caller already
        stamped one — like :meth:`stamp_rid`, stamping happens once per
        logical request so retries share the id.
        """
        if (self._trace_prefix is not None
                and getattr(request, "trace", "absent") is None):
            return replace(
                request,
                trace="%s-%d" % (self._trace_prefix, next(self._traces)),
            )
        return request

    async def request(self, request: Request) -> Response:
        request = self.stamp_trace(request)
        if self._retry is None:
            return await (await self.send(request))
        request = self.stamp_rid(request)
        attempt = 1
        while True:
            try:
                if self._writer is None:
                    await self.connect()
                return await (await self.send(request))
            except TransportError:
                if attempt >= self._retry.max_attempts:
                    raise
                await self.close()
                self.reconnects += 1
                await self._sleep(
                    self._retry.delay_s(attempt, self._jitter_rng)
                )
                attempt += 1

    async def _pump_responses(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = parse_response(line)
                except ProtocolError as exc:
                    self._fail_inflight(exc)
                    return
                future = await self._inflight.get()
                if not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._fail_inflight(TransportError("connection closed"))

    def _fail_inflight(self, exc: BaseException) -> None:
        while not self._inflight.empty():
            future = self._inflight.get_nowait()
            if not future.done():
                future.set_exception(exc)
                # Some of these futures were abandoned by a send() that
                # raised before returning them; retrieve the exception
                # now so their destruction never logs a warning.
                # (Awaiting one afterwards still raises normally.)
                future.exception()


class InProcessClient(_RequestSurface):
    """Drives a :class:`~repro.serve.server.ServiceCore` without sockets.

    The request still travels through the real shard queue and worker,
    so backpressure, shedding and eviction behave exactly as they do
    over TCP — only the wire encoding is skipped.

    Args:
        core: a started (or startable) service core.
    """

    def __init__(self, core) -> None:
        self.core = core

    async def send(self, request: Request) -> "asyncio.Future":
        self.core.start()
        return self.core.submit(request)

    async def request(self, request: Request) -> Response:
        return await (await self.send(request))
