"""Reference clients for the localization service.

Two transports, one vocabulary:

- :class:`ServeClient` speaks the NDJSON wire protocol over TCP and is
  what an external robot bridge would embed.  It supports pipelining:
  ``send_*`` methods enqueue a request and return an awaitable, and the
  server guarantees responses arrive in request order per connection.
- :class:`InProcessClient` drives a :class:`~repro.serve.server.ServiceCore`
  directly — no sockets — which is what the replay gate, the unit tests
  and the quick benchmark mode use.  Both clients expose the identical
  convenience surface, so a test written against one runs against the
  other.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.serve.protocol import (
    ByeRequest,
    ConfidenceRequest,
    FixRequest,
    HelloRequest,
    ObserveRequest,
    PingRequest,
    ProtocolError,
    Request,
    Response,
    StatsRequest,
    WindowRequest,
    encode_request,
    parse_response,
)

__all__ = ["ServeClient", "InProcessClient"]


class _RequestSurface:
    """The shared convenience vocabulary; subclasses implement ``request``."""

    async def request(self, request: Request) -> Response:
        raise NotImplementedError

    async def hello(self, tenant: str, **kwargs) -> Response:
        return await self.request(HelloRequest(tenant=tenant, **kwargs))

    async def window_open(self, tenant: str, robot: int,
                          t: float = 0.0) -> Response:
        return await self.request(
            WindowRequest(tenant=tenant, robot=robot, event="open", t=t)
        )

    async def window_close(self, tenant: str, robot: int,
                           t: float = 0.0) -> Response:
        return await self.request(
            WindowRequest(tenant=tenant, robot=robot, event="close", t=t)
        )

    async def observe(
        self,
        tenant: str,
        robot: int,
        seq: int,
        x: float,
        y: float,
        rssi_dbm: float,
        anchor_id: Optional[int] = None,
        t: float = 0.0,
    ) -> Response:
        return await self.request(ObserveRequest(
            tenant=tenant, robot=robot, seq=seq, x=x, y=y,
            rssi_dbm=rssi_dbm, anchor_id=anchor_id, t=t,
        ))

    async def fix(self, tenant: str, robot: int) -> Response:
        return await self.request(FixRequest(tenant=tenant, robot=robot))

    async def confidence(self, tenant: str, robot: int) -> Response:
        return await self.request(
            ConfidenceRequest(tenant=tenant, robot=robot)
        )

    async def stats(self, tenant: str) -> Response:
        return await self.request(StatsRequest(tenant=tenant))

    async def bye(self, tenant: str) -> Response:
        return await self.request(ByeRequest(tenant=tenant))

    async def ping(self, tenant: str = "") -> Response:
        return await self.request(PingRequest(tenant=tenant))


class ServeClient(_RequestSurface):
    """NDJSON-over-TCP client.

    Use as an async context manager, or call :meth:`connect` /
    :meth:`close` explicitly.  ``request`` is send-then-await; for
    pipelined throughput use :meth:`send` to enqueue many requests and
    await the returned futures afterwards.

    Args:
        host: server address.
        port: server port.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._inflight: "asyncio.Queue" = asyncio.Queue()
        self._pump: Optional[asyncio.Task] = None

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._pump = asyncio.get_running_loop().create_task(
            self._pump_responses()
        )
        return self

    async def close(self) -> None:
        pump, self._pump = self._pump, None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
            self._writer = None
            self._reader = None
        if pump is not None:
            pump.cancel()
            try:
                await pump
            except asyncio.CancelledError:
                pass

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def send(self, request: Request) -> "asyncio.Future":
        """Enqueue one request; the future resolves with its response.

        Responses map to requests by order (the protocol guarantees
        per-connection ordering), which is what makes pipelining safe.
        """
        if self._writer is None:
            raise ConnectionError("client is not connected")
        future = asyncio.get_running_loop().create_future()
        await self._inflight.put(future)
        self._writer.write(encode_request(request).encode("utf-8") + b"\n")
        await self._writer.drain()
        return future

    async def request(self, request: Request) -> Response:
        return await (await self.send(request))

    async def _pump_responses(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = parse_response(line)
                except ProtocolError as exc:
                    self._fail_inflight(exc)
                    return
                future = await self._inflight.get()
                if not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._fail_inflight(ConnectionError("connection closed"))

    def _fail_inflight(self, exc: BaseException) -> None:
        while not self._inflight.empty():
            future = self._inflight.get_nowait()
            if not future.done():
                future.set_exception(exc)


class InProcessClient(_RequestSurface):
    """Drives a :class:`~repro.serve.server.ServiceCore` without sockets.

    The request still travels through the real shard queue and worker,
    so backpressure, shedding and eviction behave exactly as they do
    over TCP — only the wire encoding is skipped.

    Args:
        core: a started (or startable) service core.
    """

    def __init__(self, core) -> None:
        self.core = core

    async def send(self, request: Request) -> "asyncio.Future":
        self.core.start()
        return self.core.submit(request)

    async def request(self, request: Request) -> Response:
        return await (await self.send(request))
