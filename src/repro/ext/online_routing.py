"""Online geographic routing over the live CoCoA network.

The offline study (:mod:`repro.ext.georouting`) routes over frozen
snapshots; this module runs the §6 application *in the event simulator*,
with every real-world complication CoCoA introduces:

- neighbor tables built from HELLO packets that carry each robot's
  *estimated* position (anchors advertise device positions, unknowns their
  CoCoA estimates),
- positions that go stale as robots move between transmit windows,
- forwarding that can only happen while radios are awake, over the real
  CSMA MAC with losses and collisions.

Greedy forwarding names an explicit next hop in each broadcast frame; a
node that cannot find a neighbor strictly closer (by advertised
coordinates) to the destination drops the message — delivery rate is
therefore a direct end-to-end measurement of CoCoA coordinate quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import CoCoAConfig
from repro.core.coordinator import Coordinator
from repro.core.pdf_table import PdfTable
from repro.core.team import CoCoATeam
from repro.net.interface import NetworkInterface
from repro.net.packet import Packet, ReceivedPacket
from repro.sim.engine import Simulator
from repro.util.geometry import Vec2

HELLO_KIND = "hello"
GEO_KIND = "geo_data"
#: HELLO: node id (4) + x, y (16).
HELLO_BYTES = 20
#: Geo header: destination id (4) + destination coords (16) + next hop (4)
#: + hop count (1).
GEO_HEADER_BYTES = 25


@dataclass(frozen=True)
class HelloPayload:
    """One robot's periodic self-advertisement."""

    node_id: int
    x: float
    y: float

    @property
    def position(self) -> Vec2:
        return Vec2(self.x, self.y)


@dataclass(frozen=True)
class GeoPayload:
    """A routed message: where it is going and who should relay it next."""

    dest_id: int
    dest_position: Vec2
    next_hop: int
    hop_count: int
    body: object
    body_bytes: int
    msg_id: int


@dataclass
class RoutingStats:
    """Per-node routing counters."""

    originated: int = 0
    delivered: int = 0
    forwarded: int = 0
    dropped_no_neighbor: int = 0
    dropped_local_minimum: int = 0
    dropped_ttl: int = 0


class NeighborTable:
    """Who is nearby and where they claim to be.

    Entries age out after ``max_age_s`` — with CoCoA's duty cycling a
    sensible age is a couple of beacon periods, so a neighbor heard last
    window still counts but long-gone robots do not.
    """

    def __init__(self, sim: Simulator, max_age_s: float) -> None:
        if max_age_s <= 0:
            raise ValueError("max_age_s must be positive, got %r" % max_age_s)
        self._sim = sim
        self._max_age = max_age_s
        self._entries: Dict[int, Tuple[Vec2, float]] = {}

    def update(self, node_id: int, position: Vec2) -> None:
        """Record/refresh a neighbor's advertised position."""
        self._entries[node_id] = (position, self._sim.now)

    def fresh_entries(self) -> Dict[int, Vec2]:
        """Current (unexpired) neighbors and their advertised positions."""
        horizon = self._sim.now - self._max_age
        stale = [n for n, (_, t) in self._entries.items() if t < horizon]
        for node_id in stale:
            del self._entries[node_id]
        return {n: p for n, (p, _) in self._entries.items()}

    def __len__(self) -> int:
        return len(self.fresh_entries())


class GeoRouter:
    """One node's greedy geographic forwarding agent.

    Args:
        sim: simulation engine.
        interface: the node's network attachment.
        neighbor_table: HELLO-maintained neighbor knowledge.
        own_position: callable returning this node's *believed* position
            (its estimate — never ground truth).
        max_hops: TTL for routed messages.
        on_deliver: callback ``(payload, received)`` when a message for
            this node arrives.
    """

    def __init__(
        self,
        sim: Simulator,
        interface: NetworkInterface,
        neighbor_table: NeighborTable,
        own_position: Callable[[], Vec2],
        max_hops: int = 16,
        on_deliver: Optional[Callable[[GeoPayload, ReceivedPacket], None]] = None,
        redundancy: int = 2,
        reliable_hop_m: float = 70.0,
    ) -> None:
        if max_hops < 1:
            raise ValueError("max_hops must be >= 1, got %r" % max_hops)
        if redundancy < 1:
            raise ValueError("redundancy must be >= 1, got %r" % redundancy)
        if reliable_hop_m <= 0:
            raise ValueError(
                "reliable_hop_m must be positive, got %r" % reliable_hop_m
            )
        self._sim = sim
        self._interface = interface
        self._neighbors = neighbor_table
        self._own_position = own_position
        self._max_hops = max_hops
        self._on_deliver = on_deliver
        #: Frames are sent this many times (CoCoA's k-beacons principle:
        #: broadcast frames get no MAC acknowledgements, so reliability
        #: comes from repetition); duplicates are filtered by message id.
        self._redundancy = redundancy
        #: Hops advertised farther than this are treated as unreliable and
        #: only used when no reliable neighbor makes progress — classic
        #: greedy picks the longest, flakiest link otherwise.
        self._reliable_hop_m = reliable_hop_m
        self._msg_ids = 0
        self._handled: set = set()
        self.stats = RoutingStats()
        interface.on_receive(GEO_KIND, self._on_geo_packet)

    @property
    def node_id(self) -> int:
        return self._interface.node_id

    def send(
        self,
        dest_id: int,
        dest_position: Vec2,
        body: object = None,
        body_bytes: int = 16,
    ) -> bool:
        """Originate a message toward ``dest_position``.

        Returns True if a first hop existed and the frame was handed to
        the MAC; False if the message died at the source (no neighbors or
        immediate local minimum).
        """
        self.stats.originated += 1
        self._msg_ids += 1
        payload = GeoPayload(
            dest_id=dest_id,
            dest_position=dest_position,
            next_hop=-1,
            hop_count=0,
            body=body,
            body_bytes=body_bytes,
            msg_id=self._msg_ids,
        )
        return self._forward(payload)

    def _forward(self, payload: GeoPayload) -> bool:
        if payload.hop_count >= self._max_hops:
            self.stats.dropped_ttl += 1
            return False
        neighbors = self._neighbors.fresh_entries()
        neighbors.pop(self.node_id, None)
        if not neighbors:
            self.stats.dropped_no_neighbor += 1
            return False
        best_id = self._pick_next_hop(neighbors, payload)
        if best_id is None:
            self.stats.dropped_local_minimum += 1
            return False
        relayed = GeoPayload(
            dest_id=payload.dest_id,
            dest_position=payload.dest_position,
            next_hop=best_id,
            hop_count=payload.hop_count + 1,
            body=payload.body,
            body_bytes=payload.body_bytes,
            msg_id=payload.msg_id,
        )
        for _ in range(self._redundancy):
            self._interface.send_broadcast(
                Packet(
                    src=self.node_id,
                    kind=GEO_KIND,
                    payload=relayed,
                    payload_bytes=GEO_HEADER_BYTES + payload.body_bytes,
                )
            )
        return True

    def _pick_next_hop(
        self, neighbors: Dict[int, Vec2], payload: GeoPayload
    ) -> Optional[int]:
        """Greedy with a reliability preference.

        If the destination itself is a neighbor, hand the message over
        directly.  Otherwise pick, among neighbors strictly closer to the
        destination than we believe ourselves to be, the one making the
        most progress over a *reliable* link (advertised hop distance at
        most ``reliable_hop_m``); fall back to the best unreliable one.
        """
        own = self._own_position()
        if payload.dest_id in neighbors:
            hop = own.distance_to(neighbors[payload.dest_id])
            if hop <= self._reliable_hop_m:
                return payload.dest_id
            # The destination is audible but far: relaying through a
            # reliable intermediate beats one flaky long shot.
        target = payload.dest_position
        own_distance = own.distance_to(target)
        best_reliable: Optional[int] = None
        best_reliable_d = own_distance
        best_any: Optional[int] = None
        best_any_d = own_distance
        for node_id, position in neighbors.items():
            d = position.distance_to(target)
            if d >= own_distance:
                continue
            if d < best_any_d:
                best_any, best_any_d = node_id, d
            if own.distance_to(position) <= self._reliable_hop_m:
                if d < best_reliable_d:
                    best_reliable, best_reliable_d = node_id, d
        return best_reliable if best_reliable is not None else best_any

    def _on_geo_packet(self, received: ReceivedPacket) -> None:
        payload: GeoPayload = received.packet.payload
        if payload.next_hop != self.node_id:
            return
        # Redundant copies of the same (message, hop) are handled once.
        key = (received.packet.src, payload.msg_id, payload.hop_count)
        if key in self._handled:
            return
        self._handled.add(key)
        if len(self._handled) > 65536:
            self._handled.clear()
        if payload.dest_id == self.node_id:
            self.stats.delivered += 1
            if self._on_deliver is not None:
                self._on_deliver(payload, received)
            return
        if self._forward(payload):
            self.stats.forwarded += 1


class RoutingTeam(CoCoATeam):
    """A CoCoA team whose robots run HELLO + greedy geographic routing.

    Every robot broadcasts a HELLO (advertising its *estimated* position)
    shortly after each transmit window opens, maintains a neighbor table,
    and participates in forwarding.  Localization, coordination and
    energy accounting are inherited unchanged — routing rides on top,
    inside the awake windows, exactly as an application would deploy it.
    """

    def __init__(
        self,
        config: CoCoAConfig,
        neighbor_max_age_periods: float = 2.5,
        max_hops: int = 16,
        pdf_table: Optional[PdfTable] = None,
    ) -> None:
        self._neighbor_max_age_periods = neighbor_max_age_periods
        self._max_hops = max_hops
        self.routers: Dict[int, GeoRouter] = {}
        self.neighbor_tables: Dict[int, NeighborTable] = {}
        self.delivered_messages: List[Tuple[int, GeoPayload]] = []
        super().__init__(config, pdf_table=pdf_table)
        self._wire_routing()

    def _wire_routing(self) -> None:
        max_age = (
            self._neighbor_max_age_periods * self.config.beacon_period_s
        )
        for node in self.nodes:
            table = NeighborTable(self.sim, max_age)
            self.neighbor_tables[node.node_id] = table

            def believed_position(n=node) -> Vec2:
                return n.estimated_position(self.sim.now)

            router = GeoRouter(
                self.sim,
                node.interface,
                table,
                believed_position,
                max_hops=self._max_hops,
                on_deliver=lambda p, rp: self.delivered_messages.append(
                    (rp.receiver, p)
                ),
            )
            self.routers[node.node_id] = router
            node.interface.on_receive(
                HELLO_KIND,
                lambda rp, t=table: t.update(
                    rp.packet.payload.node_id, rp.packet.payload.position
                ),
            )
            self._hook_hello(node, believed_position)

    def _hook_hello(self, node, believed_position) -> None:
        if node.coordinator is None:
            return
        coordinator = node.coordinator
        rng = self.streams.spawn("hello", node.node_id)

        def start_with_hello() -> None:
            # Jitter the HELLO into the window to dodge the beacon burst.
            self.sim.schedule(
                float(rng.uniform(0.1, coordinator.window_s * 0.9)),
                self._send_hello,
                node,
                believed_position,
                name="hello-tx",
            )

        coordinator.add_window_start_hook(start_with_hello)

    def _send_hello(self, node, believed_position) -> None:
        if not node.interface.is_awake:
            return
        position = believed_position()
        node.interface.send_broadcast(
            Packet(
                src=node.node_id,
                kind=HELLO_KIND,
                payload=HelloPayload(node.node_id, position.x, position.y),
                payload_bytes=HELLO_BYTES,
            )
        )

    def on_window(
        self,
        callback: Callable[[], None],
        delay_s: float = 1.0,
        node_id: Optional[int] = None,
    ) -> None:
        """Run ``callback`` ``delay_s`` into every transmit window.

        Applications must originate traffic while radios are awake; this
        hook rides one robot's window schedule, which the whole team
        tracks to within the wake guard.

        Args:
            callback: invoked once per transmit window.
            delay_s: offset into the window.
            node_id: whose schedule to ride; defaults to the first
                coordinated node (pick a robot you expect to survive).
        """
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative, got %r" % delay_s)
        if node_id is not None:
            anchor_node = self.nodes[node_id]
        else:
            anchor_node = next(
                (n for n in self.nodes if n.coordinator is not None), None
            )
        if anchor_node is None or anchor_node.coordinator is None:
            raise RuntimeError("no coordinated node to ride the schedule of")
        coordinator = anchor_node.coordinator

        def start_with_traffic() -> None:
            self.sim.schedule(delay_s, callback, name="app-traffic")

        coordinator.add_window_start_hook(start_with_traffic)

    def routing_stats(self) -> RoutingStats:
        """Team-summed routing counters."""
        total = RoutingStats()
        for router in self.routers.values():
            s = router.stats
            total.originated += s.originated
            total.delivered += s.delivered
            total.forwarded += s.forwarded
            total.dropped_no_neighbor += s.dropped_no_neighbor
            total.dropped_local_minimum += s.dropped_local_minimum
            total.dropped_ttl += s.dropped_ttl
        return total
