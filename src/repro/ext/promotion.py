"""Beacon promotion: localized unknowns help localize others (§6).

    "One area is to use the robots that do not have localization devices
    but are already localized to also initiate beaconing.  This could
    potentially reduce the need for robots equipped with localization
    devices and lower costs.  On the other hand, it is hard to ascertain
    the goodness of the location a particular node has and using such
    techniques could potentially increase localization errors."

:class:`PromotionTeam` extends the standard team: an unknown robot whose
latest Bayesian fix is *confident enough* (posterior spread at or below
``max_fix_std_m``) transmits beacons in subsequent transmit windows,
advertising its *estimated* position.  The confidence gate is exactly the
"goodness" question the paper raises; the promotion ablation benchmark
sweeps it to show both regimes — extra beacons helping sparse-anchor teams
and error feedback hurting when the gate is too loose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.beaconing import AnchorBeaconer
from repro.core.clock import DriftingClock
from repro.core.config import CoCoAConfig
from repro.core.coordinator import Coordinator
from repro.core.estimator import PositionEstimator
from repro.core.pdf_table import PdfTable
from repro.core.team import CoCoATeam
from repro.multicast.odmrp import OdmrpNode
from repro.net.interface import NetworkInterface


@dataclass(frozen=True)
class PromotionConfig:
    """Gate parameters for promoting a localized unknown to a beacon source.

    Attributes:
        max_fix_std_m: maximum posterior spread of the robot's latest fix
            for it to trust its own location enough to advertise it.
        k: beacons a promoted robot sends per window (the paper's anchors
            use 3; promoted robots default to fewer to limit the damage a
            badly localized robot can do).
    """

    max_fix_std_m: float = 6.0
    k: int = 2

    def __post_init__(self) -> None:
        if self.max_fix_std_m <= 0:
            raise ValueError(
                "max_fix_std_m must be positive, got %r" % self.max_fix_std_m
            )
        if self.k < 1:
            raise ValueError("k must be at least 1, got %r" % self.k)


class PromotionTeam(CoCoATeam):
    """A CoCoA team in which confident unknowns also beacon.

    Args:
        config: the base scenario.
        promotion: the promotion gate.
        pdf_table: optional pre-built calibration table.
    """

    def __init__(
        self,
        config: CoCoAConfig,
        promotion: PromotionConfig = PromotionConfig(),
        pdf_table: Optional[PdfTable] = None,
    ) -> None:
        self.promotion = promotion
        self._promoted_beaconers: Dict[int, AnchorBeaconer] = {}
        self.promotions = 0
        super().__init__(config, pdf_table=pdf_table)

    def _build_coordinator(
        self,
        node_id: int,
        clock: DriftingClock,
        interface: NetworkInterface,
        beaconer: Optional[AnchorBeaconer],
        estimator: Optional[PositionEstimator],
        multicast: Optional[OdmrpNode],
        is_sync: bool,
    ) -> Coordinator:
        coordinator = super()._build_coordinator(
            node_id, clock, interface, beaconer, estimator, multicast, is_sync
        )
        if estimator is None:
            return coordinator
        # Give this unknown a beaconer that advertises its own estimate,
        # plus a window-start hook that fires it only when the latest fix
        # clears the confidence gate.
        node_mobility = self.channel._nodes[node_id].mobility
        promoted = AnchorBeaconer(
            self.sim,
            interface,
            node_mobility,
            self.streams.spawn("promotion", node_id),
            k=self.promotion.k,
            window_s=self.config.transmit_window_s,
            position_fn=lambda est=estimator: est.estimate,
        )
        self._promoted_beaconers[node_id] = promoted

        def window_start_with_promotion() -> None:
            if self._gate_open(estimator):
                self.promotions += 1
                promoted.start_window()

        coordinator.add_window_start_hook(window_start_with_promotion)
        return coordinator

    def _gate_open(self, estimator: PositionEstimator) -> bool:
        return (
            estimator.has_fix
            and estimator.last_fix_std_m is not None
            and estimator.last_fix_std_m <= self.promotion.max_fix_std_m
        )

    @property
    def promoted_beacons_sent(self) -> int:
        """Total beacons transmitted by promoted unknowns."""
        return sum(b.beacons_sent for b in self._promoted_beaconers.values())
