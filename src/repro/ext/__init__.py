"""Extensions: the paper's §6 future-work directions, implemented.

- :mod:`repro.ext.promotion` — "use the robots that do not have
  localization devices but are already localized to also initiate
  beaconing", with the confidence gate the paper worries about ("it is
  hard to ascertain the goodness of the location a particular node has").
- :mod:`repro.ext.power_control` — transmission power control: how raising
  or lowering transmit power moves the communication range, the calibrated
  PDF Table, localization accuracy and energy.
- :mod:`repro.ext.georouting` — greedy geographic routing over CoCoA
  coordinates, the application the conclusion motivates ("CoCoA
  coordinates are good enough to enable scalable geographic routing").
- :mod:`repro.ext.failures` — robot failure injection and Sync-robot
  failover, the robustness story the single-Sync-robot design needs in
  the paper's disaster scenarios.
"""

from repro.ext.failures import FailureSchedule, ResilientTeam, SyncFailover
from repro.ext.georouting import GeoRoutingResult, greedy_route, run_georouting_study
from repro.ext.online_routing import (
    GeoRouter,
    NeighborTable,
    RoutingTeam,
)
from repro.ext.power_control import PowerControlPoint, run_power_sweep
from repro.ext.promotion import PromotionConfig, PromotionTeam

__all__ = [
    "FailureSchedule",
    "ResilientTeam",
    "SyncFailover",
    "PromotionConfig",
    "PromotionTeam",
    "run_power_sweep",
    "PowerControlPoint",
    "greedy_route",
    "GeoRouter",
    "NeighborTable",
    "RoutingTeam",
    "run_georouting_study",
    "GeoRoutingResult",
]
