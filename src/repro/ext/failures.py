"""Failure injection and Sync-robot failover.

The paper deploys CoCoA in disaster-response scenarios where robots *will*
die — falls, crushed chassis, drained batteries — yet it designates a
single Sync robot as the source of all synchronization.  This module makes
that single point of failure survivable and lets experiments measure how
the team degrades:

- :class:`FailureSchedule` / :class:`ResilientTeam` kill robots at chosen
  times: the radio powers off, the coordinator halts, and the robot stops
  counting toward localization metrics from that moment on (its error
  samples become NaN; :class:`~repro.core.team.TeamResult` aggregates with
  NaN-aware means).
- :class:`SyncFailover` gives every anchor a takeover rule: an anchor that
  misses ``threshold`` consecutive expected SYNCs begins waiting its
  *rank* (position among anchor ids) in further silent periods, then
  promotes itself to Sync robot.  Rank staggering makes the lowest alive
  anchor win without any extra protocol traffic, and a self-promoted
  anchor demotes itself the moment it hears SYNC from a lower id — the
  classic bully-style resolution, paid for entirely with messages CoCoA
  already sends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import CoCoAConfig
from repro.core.coordinator import Coordinator, SyncPayload
from repro.core.pdf_table import PdfTable
from repro.core.team import CoCoATeam
from repro.faults.spec import FaultPlan


@dataclass(frozen=True)
class FailureSchedule:
    """Robot deaths to inject: (time_s, node_id) pairs.

    Entries are sorted and de-duplicated at construction, so the kill
    events :meth:`ResilientTeam.run` schedules — and therefore the
    simulation outcome — never depend on the order the caller listed
    them in.
    """

    failures: Tuple[Tuple[float, int], ...] = ()

    def __post_init__(self) -> None:
        for time_s, node_id in self.failures:
            if time_s < 0:
                raise ValueError(
                    "failure time must be non-negative, got %r" % time_s
                )
            if node_id < 0:
                raise ValueError(
                    "node id must be non-negative, got %r" % node_id
                )
        object.__setattr__(
            self, "failures", tuple(sorted(set(self.failures)))
        )

    @staticmethod
    def of(*failures: Tuple[float, int]) -> "FailureSchedule":
        """Convenience constructor: ``FailureSchedule.of((100.0, 3))``."""
        return FailureSchedule(tuple(failures))


class SyncFailover:
    """One anchor's Sync-robot takeover logic.

    Args:
        team: the owning team (provides SYNC sending machinery).
        node_id: this anchor's id.
        rank: this anchor's position among anchor ids (0 = first backup).
        coordinator: this anchor's coordinator.
        threshold: consecutive silent periods before the rank counter
            starts; total silence before takeover is ``threshold + rank``
            periods.
    """

    def __init__(
        self,
        team: "ResilientTeam",
        node_id: int,
        rank: int,
        coordinator: Coordinator,
        threshold: int = 3,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1, got %r" % threshold)
        self._team = team
        self.node_id = node_id
        self.rank = rank
        self._coordinator = coordinator
        self._threshold = threshold
        self._last_sync_count = 0
        self.silent_periods = 0
        self.is_acting_sync = False
        self.takeovers = 0

    def on_window_close(self) -> None:
        """Called each period: track SYNC silence, maybe take over.

        Taking over additionally requires having *listened continuously*
        (coordinator resync mode, radio never sleeping) for at least one
        full period.  A backup whose own clock drifted during the outage
        would otherwise promote itself without ever being able to hear
        that a lower-ranked backup already took over — a split-brain with
        two Sync robots on diverged timelines.
        """
        received = self._coordinator.syncs_received
        if received > self._last_sync_count:
            self.silent_periods = 0
        else:
            self.silent_periods += 1
        self._last_sync_count = received
        # The stagger lives in the *listening* requirement: backup rank r
        # must have spent 2 + r full periods awake in resync mode hearing
        # nothing.  Every lower-ranked backup promotes (and is heard —
        # the candidates are continuously awake) at least one period
        # earlier, so exactly one new Sync robot emerges even when every
        # backup's clock drifted during the outage.
        if self._coordinator.resync_after is None:
            listened_enough = self.silent_periods >= (
                self._threshold + self.rank
            )
        else:
            # Two periods of spacing per rank: a single lost SYNC from the
            # newly promoted backup must not trigger the next one.
            listened_enough = (
                self._coordinator.resync_periods >= 2 + 2 * self.rank
            )
        if (
            not self.is_acting_sync
            and self.silent_periods >= self._threshold
            and listened_enough
        ):
            self._take_over()

    def _take_over(self) -> None:
        self.is_acting_sync = True
        self.takeovers += 1
        self._coordinator.suppress_resync = True
        node = self._team.nodes[self.node_id]
        if node.multicast is not None:
            node.multicast.promote_to_source()

    def on_sync_heard(self, payload: SyncPayload) -> None:
        """Demote if a lower-id (healthier-ranked) Sync robot is alive."""
        self.silent_periods = 0
        if (
            self.is_acting_sync
            and payload.source_id >= 0
            and payload.source_id < self.node_id
        ):
            self.is_acting_sync = False
            self._coordinator.suppress_resync = False
            node = self._team.nodes[self.node_id]
            if node.multicast is not None and not node.is_sync_robot:
                node.multicast.demote_from_source()


class ResilientTeam(CoCoATeam):
    """A CoCoA team with injected failures and Sync failover.

    Args:
        config: base scenario.
        schedule: robot deaths to inject.
        failover: enable the anchors' Sync takeover rule.
        failover_threshold: silent periods before the first backup reacts.
        pdf_table: optional pre-built calibration.
        faults: optional :class:`~repro.faults.spec.FaultPlan` overriding
            ``config.faults`` — whole-robot deaths compose with the
            channel/sensor faults of :mod:`repro.faults`.
    """

    def __init__(
        self,
        config: CoCoAConfig,
        schedule: FailureSchedule = FailureSchedule(),
        failover: bool = True,
        failover_threshold: int = 3,
        resync_after_silent_periods: Optional[int] = 3,
        pdf_table: Optional[PdfTable] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.schedule = schedule
        self._failover_enabled = failover
        self._failover_threshold = failover_threshold
        self._resync_after = resync_after_silent_periods
        self.failovers: Dict[int, SyncFailover] = {}
        self.dead: Set[int] = set()
        super().__init__(config, pdf_table=pdf_table, faults=faults)
        self._wire_failover()

    def _build_coordinator(self, *args, **kwargs) -> Coordinator:
        coordinator = super()._build_coordinator(*args, **kwargs)
        coordinator.resync_after = self._resync_after
        return coordinator

    # -- failover wiring ------------------------------------------------------

    def _wire_failover(self) -> None:
        if not self._failover_enabled:
            return
        anchors = [n for n in self.nodes if n.is_anchor and n.coordinator]
        backups = [n for n in anchors if not n.is_sync_robot]
        for rank, node in enumerate(sorted(backups, key=lambda n: n.node_id)):
            component = SyncFailover(
                self,
                node.node_id,
                rank,
                node.coordinator,
                threshold=self._failover_threshold,
            )
            self.failovers[node.node_id] = component
            self._hook_anchor(node, component)

    def _hook_anchor(self, node, component: SyncFailover) -> None:
        coordinator = node.coordinator

        def start_with_failover() -> None:
            if component.is_acting_sync and node.multicast is not None:
                self._sync_round(node.multicast, coordinator.clock)

        coordinator.add_window_close_hook(component.on_window_close)
        coordinator.add_window_start_hook(start_with_failover)
        if node.multicast is not None:
            node.multicast.on_data(
                lambda body, rp, c=component: (
                    c.on_sync_heard(body)
                    if isinstance(body, SyncPayload)
                    else None
                )
            )

    # -- failure injection ------------------------------------------------------

    def kill(self, node_id: int) -> None:
        """Kill a robot immediately: radio off, schedule halted.

        Idempotent; killing an unknown id raises ``KeyError``.
        """
        node = self.nodes[node_id]
        if node_id in self.dead:
            return
        self.dead.add(node_id)
        node.interface.mac.flush()
        node.interface.radio.power_off()
        if node.coordinator is not None:
            node.coordinator.stop()

    def _sample_metrics(self, count: int) -> None:
        """Like the base sampler, but dead robots record NaN."""
        t = self.sim.now
        row: List[float] = []
        for node in self._measured_nodes():
            if node.node_id in self.dead:
                row.append(float("nan"))
                continue
            node.estimator.tick(t)
            row.append(node.localization_error(t))
        self._sample_times.append(t)
        self._sample_errors.append(row)

    def run(self):
        for time_s, node_id in self.schedule.failures:
            if time_s > self.config.duration_s:
                continue
            self.sim.schedule_at(time_s, self.kill, node_id, name="failure")
        return super().run()
