"""Transmission power control study (§6).

    "We are also interested in determining how transmission power control
    can be used to increase the distance that nodes in the CoCoA
    architecture can cooperate."

Raising transmit power shifts the whole RSSI curve up: the communication
range grows, more anchors become audible, but the per-packet transmit
energy grows with it.  :func:`run_power_sweep` re-runs the calibration and
the headline scenario for each power offset and reports range, accuracy
and energy, exposing the trade-off the paper asks about.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.config import CoCoAConfig
from repro.core.team import CoCoATeam
from repro.experiments.metrics import summarize_errors
from repro.experiments.runner import SharedCalibration
from repro.net.phy import PathLossModel


@dataclass(frozen=True)
class PowerControlPoint:
    """One row of the power-control study.

    Attributes:
        power_delta_db: transmit power offset relative to the default.
        range_m: distance at which the mean RSSI meets the receiver's
            sensitivity.
        time_average_error_m: CoCoA localization error at this power.
        total_energy_j: team energy (transmit cost scales with power).
        beacons_delivered: beacons that actually reached a receiver.
    """

    power_delta_db: float
    range_m: float
    time_average_error_m: float
    total_energy_j: float
    beacons_delivered: int


def _tx_energy_scale(power_delta_db: float) -> float:
    """Transmit power in watts scales linearly with the mW level; the PA
    dominates, so per-packet send cost scales with the same ratio."""
    return 10.0 ** (power_delta_db / 10.0)


def run_power_sweep(
    power_deltas_db: Sequence[float] = (-6.0, 0.0, 6.0),
    base_config: Optional[CoCoAConfig] = None,
    duration_s: float = 600.0,
) -> List[PowerControlPoint]:
    """Run the CoCoA scenario at several transmit power levels.

    Each level gets its own channel model (the RSSI curve shifts by the
    power delta), its own calibration table (the paper's offline phase is
    per-hardware-configuration), and a transmit-cost-scaled energy model.
    """
    if base_config is None:
        base_config = CoCoAConfig(duration_s=duration_s)
    calibration = SharedCalibration()
    points: List[PowerControlPoint] = []
    for delta in power_deltas_db:
        base_pl = base_config.path_loss
        path_loss = replace(
            base_pl, rssi_at_1m_dbm=base_pl.rssi_at_1m_dbm + delta
        )
        scale = _tx_energy_scale(delta)
        energy_model = replace(
            base_config.energy_model,
            tx_power_mw=base_config.energy_model.tx_power_mw * scale,
            send_cost_per_byte_uj=(
                base_config.energy_model.send_cost_per_byte_uj * scale
            ),
            send_cost_fixed_uj=(
                base_config.energy_model.send_cost_fixed_uj * scale
            ),
        )
        config = replace(
            base_config,
            path_loss=path_loss,
            energy_model=energy_model,
            duration_s=duration_s,
        )
        team = CoCoATeam(config, pdf_table=calibration.table_for(config))
        result = team.run()
        range_m = path_loss.distance_for_mean_rssi(
            config.receiver.sensitivity_dbm
        )
        summary = summarize_errors(
            result.errors,
            skip_first_s=min(config.beacon_period_s, duration_s / 2),
        )
        points.append(
            PowerControlPoint(
                power_delta_db=delta,
                range_m=range_m,
                time_average_error_m=summary.time_average_m,
                total_energy_j=result.total_energy_j(),
                beacons_delivered=result.channel_stats.frames_delivered,
            )
        )
    return points
