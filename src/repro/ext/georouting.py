"""Greedy geographic routing over CoCoA coordinates (§6 application).

    "CoCoA coordinates are good enough to enable scalable geographic
    routing [23] of messages and data among the robots or to a controller."

Greedy geographic forwarding moves a packet to whichever neighbor is
closest (by *advertised* coordinates) to the destination; it fails at a
local minimum, where no neighbor improves on the current holder.  Its
delivery rate therefore directly measures coordinate quality: with exact
positions, failures come only from topology voids; with CoCoA estimates,
additional failures come from localization error misdirecting the greedy
choice.

:func:`run_georouting_study` runs a CoCoA team, freezes position snapshots
at several times, and compares greedy routing over true versus estimated
coordinates — the quantitative version of the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.config import CoCoAConfig
from repro.core.team import CoCoATeam
from repro.experiments.runner import SharedCalibration
from repro.util.geometry import Vec2


@dataclass(frozen=True)
class GeoRoutingResult:
    """Aggregate outcome of a routing study.

    Attributes:
        delivery_rate_true: greedy delivery rate using true coordinates.
        delivery_rate_estimated: greedy delivery rate using CoCoA
            estimates.
        mean_stretch_true: delivered-path hops / shortest-path hops.
        mean_stretch_estimated: same, over CoCoA coordinates.
        attempts: routed (source, destination) pairs.
    """

    delivery_rate_true: float
    delivery_rate_estimated: float
    mean_stretch_true: float
    mean_stretch_estimated: float
    attempts: int


def greedy_route(
    graph: nx.Graph,
    coordinates: Dict[int, Vec2],
    source: int,
    destination: int,
    max_hops: Optional[int] = None,
) -> Optional[List[int]]:
    """Greedy geographic forwarding from ``source`` to ``destination``.

    Each hop forwards to the neighbor whose *advertised* coordinates are
    closest to the destination's advertised coordinates, only if that
    strictly improves on the current holder (otherwise: local minimum,
    routing fails).

    Args:
        graph: connectivity graph (edges = radio links).
        coordinates: node id -> advertised position.
        source: originating node.
        destination: target node.
        max_hops: hop budget; defaults to the node count.

    Returns:
        The hop list including both endpoints, or ``None`` on failure.
    """
    if source not in graph or destination not in graph:
        return None
    if max_hops is None:
        max_hops = graph.number_of_nodes()
    target = coordinates[destination]
    path = [source]
    current = source
    for _ in range(max_hops):
        if current == destination:
            return path
        neighbors = list(graph.neighbors(current))
        if not neighbors:
            return None
        current_distance = coordinates[current].distance_to(target)
        best = min(
            neighbors, key=lambda n: coordinates[n].distance_to(target)
        )
        if coordinates[best].distance_to(target) >= current_distance:
            return None  # local minimum
        path.append(best)
        current = best
    return path if current == destination else None


def _snapshot_study(
    graph: nx.Graph,
    true_coords: Dict[int, Vec2],
    est_coords: Dict[int, Vec2],
    pairs: Sequence[Tuple[int, int]],
) -> Tuple[int, int, List[float], List[float]]:
    delivered_true = delivered_est = 0
    stretch_true: List[float] = []
    stretch_est: List[float] = []
    for source, destination in pairs:
        if not nx.has_path(graph, source, destination):
            continue
        shortest = nx.shortest_path_length(graph, source, destination)
        true_path = greedy_route(graph, true_coords, source, destination)
        if true_path is not None:
            delivered_true += 1
            if shortest > 0:
                stretch_true.append((len(true_path) - 1) / shortest)
        est_path = greedy_route(graph, est_coords, source, destination)
        if est_path is not None:
            delivered_est += 1
            if shortest > 0:
                stretch_est.append((len(est_path) - 1) / shortest)
    return delivered_true, delivered_est, stretch_true, stretch_est


def run_georouting_study(
    config: Optional[CoCoAConfig] = None,
    snapshot_times: Sequence[float] = (150.0, 300.0, 450.0),
    pairs_per_snapshot: int = 60,
    link_range_m: float = 90.0,
    seed: int = 7,
) -> GeoRoutingResult:
    """Compare greedy routing over true versus CoCoA coordinates.

    Runs one CoCoA scenario, then at each snapshot time routes random
    (source, destination) pairs over the same connectivity graph twice:
    once with ground-truth coordinates and once with each robot's own
    estimate (anchors advertise their device positions).

    Estimated-coordinate snapshots come from re-running the deterministic
    scenario's mobility/estimator state via the team's node objects after
    the run, so both coordinate sets describe the same instant.
    """
    if config is None:
        config = CoCoAConfig(duration_s=max(snapshot_times) + 30.0)
    from repro.multicast.mesh import connectivity_graph

    calibration = SharedCalibration()
    team = CoCoATeam(config, pdf_table=calibration.table_for(config))

    snapshots: List[Tuple[Dict[int, Vec2], Dict[int, Vec2]]] = []

    def capture() -> None:
        t = team.sim.now
        true_coords = {
            node.node_id: node.true_position(t) for node in team.nodes
        }
        est_coords = {
            node.node_id: node.estimated_position(t) for node in team.nodes
        }
        snapshots.append((true_coords, est_coords))

    for at in snapshot_times:
        if at >= config.duration_s:
            raise ValueError(
                "snapshot time %r beyond duration %r"
                % (at, config.duration_s)
            )
        team.sim.schedule_at(at, capture, name="georouting-snapshot")
    team.run()

    rng = np.random.default_rng(seed)
    node_ids = [node.node_id for node in team.nodes]
    total_true = total_est = total_attempts = 0
    stretch_true_all: List[float] = []
    stretch_est_all: List[float] = []
    for true_coords, est_coords in snapshots:
        graph = connectivity_graph(true_coords, link_range_m)
        pairs = []
        for _ in range(pairs_per_snapshot):
            source, destination = rng.choice(node_ids, size=2, replace=False)
            pairs.append((int(source), int(destination)))
        routable = [
            p for p in pairs if nx.has_path(graph, p[0], p[1])
        ]
        delivered_true, delivered_est, s_true, s_est = _snapshot_study(
            graph, true_coords, est_coords, routable
        )
        total_true += delivered_true
        total_est += delivered_est
        total_attempts += len(routable)
        stretch_true_all.extend(s_true)
        stretch_est_all.extend(s_est)

    def rate(delivered: int) -> float:
        return delivered / total_attempts if total_attempts else 0.0

    def mean(values: List[float]) -> float:
        return float(np.mean(values)) if values else float("nan")

    return GeoRoutingResult(
        delivery_rate_true=rate(total_true),
        delivery_rate_estimated=rate(total_est),
        mean_stretch_true=mean(stretch_true_all),
        mean_stretch_estimated=mean(stretch_est_all),
        attempts=total_attempts,
    )
