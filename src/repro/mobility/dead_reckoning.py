"""Dead reckoning: integrating odometry increments into a pose estimate.

This is the paper's "odometry only" localization baseline (§4.1) and the
between-beacon position maintenance inside CoCoA (§2.3): the robot adds each
measured displacement, along its estimated heading, to its current position
estimate.  Because both displacement and angular measurement errors
accumulate, the estimate drifts without bound — Figure 4's central result.
"""

from __future__ import annotations

import math

from repro.mobility.odometry import OdometryReading
from repro.util.geometry import Vec2, normalize_angle


class DeadReckoning:
    """Integrates :class:`OdometryReading` increments from an initial pose.

    The estimate is *not* clamped to the deployment area: a drifting
    dead-reckoned position can legitimately leave the map, and clamping
    would understate the error the paper measures.

    Args:
        position: initial position estimate.
        heading: initial heading estimate in radians.
    """

    def __init__(self, position: Vec2, heading: float = 0.0) -> None:
        self._position = position
        self._heading = normalize_angle(heading)
        self._distance_integrated = 0.0
        self._updates = 0

    @property
    def position(self) -> Vec2:
        """Current position estimate."""
        return self._position

    @property
    def heading(self) -> float:
        """Current heading estimate (radians, normalized)."""
        return self._heading

    @property
    def distance_integrated(self) -> float:
        """Total absolute measured distance integrated so far."""
        return self._distance_integrated

    @property
    def updates(self) -> int:
        """Number of increments applied since the last reset."""
        return self._updates

    def advance(self, reading: OdometryReading) -> Vec2:
        """Apply one odometry increment and return the new estimate.

        The displacement is applied along the heading held *before* the
        increment's turn, then the heading change — matching a
        differential-drive robot that drives up to a waypoint and turns in
        place there.  With this ordering a noiseless odometer reproduces
        the true path exactly whenever turns coincide with sample
        boundaries.
        """
        # Component-wise form of ``position + Vec2.from_polar(d, heading)``
        # — identical float operations without the intermediate vector.
        position = self._position
        heading = self._heading
        distance = reading.distance
        self._position = Vec2(
            position.x + distance * math.cos(heading),
            position.y + distance * math.sin(heading),
        )
        self._heading = normalize_angle(
            heading + reading.heading_change
        )
        self._distance_integrated += abs(reading.distance)
        self._updates += 1
        return self._position

    def snapshot_state(self) -> dict:
        """The reckoner's pose and odometer totals as a picklable mapping."""
        return {
            "x": self._position.x,
            "y": self._position.y,
            "heading": self._heading,
            "distance_integrated": self._distance_integrated,
            "updates": self._updates,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`snapshot_state` mapping (bit-exact resume)."""
        self._position = Vec2(state["x"], state["y"])
        self._heading = state["heading"]
        self._distance_integrated = state["distance_integrated"]
        self._updates = int(state["updates"])

    def reset(self, position: Vec2, heading: float = None) -> None:
        """Re-anchor the estimate, e.g. after an RF localization fix.

        Args:
            position: new position estimate.
            heading: new heading estimate; if omitted the current heading
                estimate is kept (an RF fix gives position, not orientation).
        """
        self._position = position
        if heading is not None:
            self._heading = normalize_angle(heading)
        self._updates = 0
