"""Robot mobility, odometry sensing and dead reckoning.

This package implements the paper's movement and odometry models (§3):

- :class:`~repro.mobility.waypoint.WaypointMobility` — each robot repeatedly
  picks a uniformly random destination in the deployment area and moves to it
  with a speed drawn uniformly from ``[v_min, v_max]`` (the paper uses
  ``v_min = 0.1 m/s`` and ``v_max`` of 0.5 or 2.0 m/s).
- :class:`~repro.mobility.odometry.OdometrySensor` — produces noisy
  (distance, heading-change) increments from the true trajectory, with
  zero-mean Gaussian displacement error (σ = 0.1 m/s) and zero-mean Gaussian
  angular error (σ = 10°) applied at turns.
- :class:`~repro.mobility.dead_reckoning.DeadReckoning` — integrates odometry
  increments from an initial pose, reproducing the accumulating error of
  Figures 4 and 5.
"""

from repro.mobility.base import MobilityModel, Pose, ScriptedMobility, StationaryMobility
from repro.mobility.dead_reckoning import DeadReckoning
from repro.mobility.odometry import OdometryNoise, OdometryReading, OdometrySensor
from repro.mobility.waypoint import Leg, WaypointMobility

__all__ = [
    "Pose",
    "MobilityModel",
    "StationaryMobility",
    "ScriptedMobility",
    "WaypointMobility",
    "Leg",
    "OdometrySensor",
    "OdometryNoise",
    "OdometryReading",
    "DeadReckoning",
]
