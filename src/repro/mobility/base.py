"""Mobility model interface and simple reference implementations.

All mobility models are *analytic*: they answer "where is the robot at time
``t``" for any non-decreasing sequence of queries, instead of being stepped
by simulation events.  This keeps the event queue free of per-robot movement
events and lets the channel model evaluate positions exactly at packet time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.util.geometry import Vec2


class Pose:
    """A robot pose: position, heading (radians, CCW from +x) and speed.

    A plain ``__slots__`` class (not a frozen dataclass) because poses
    are materialized on every odometry read and kinematics query;
    immutable by convention, like :class:`~repro.util.geometry.Vec2`.
    """

    __slots__ = ("position", "heading", "speed")

    def __init__(
        self, position: Vec2, heading: float, speed: float
    ) -> None:
        self.position = position
        self.heading = heading
        self.speed = speed

    def __repr__(self) -> str:
        return "Pose(position=%r, heading=%r, speed=%r)" % (
            self.position, self.heading, self.speed
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Pose:
            return (
                self.position == other.position
                and self.heading == other.heading
                and self.speed == other.speed
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.position, self.heading, self.speed))

    @property
    def x(self) -> float:
        return self.position.x

    @property
    def y(self) -> float:
        return self.position.y


class MobilityModel:
    """Base class for analytic mobility models.

    Subclasses implement :meth:`pose`.  Queries must use non-decreasing
    times; models may advance internal state lazily and are not required to
    answer queries about the past.
    """

    def pose(self, t: float) -> Pose:
        """Return the robot's pose at simulation time ``t`` (seconds)."""
        raise NotImplementedError

    def position(self, t: float) -> Vec2:
        """Return the robot's position at time ``t``."""
        return self.pose(t).position

    def heading(self, t: float) -> float:
        """Return the robot's heading at time ``t``."""
        return self.pose(t).heading

    def speed(self, t: float) -> float:
        """Return the robot's speed at time ``t``."""
        return self.pose(t).speed


class StationaryMobility(MobilityModel):
    """A robot that never moves.  Useful in tests and as static landmarks."""

    def __init__(self, position: Vec2, heading: float = 0.0) -> None:
        self._pose = Pose(position, heading, 0.0)

    def pose(self, t: float) -> Pose:
        return self._pose


class ScriptedMobility(MobilityModel):
    """Follow a fixed list of waypoints at a constant speed.

    Used by the Figure 5 reproduction, where a deterministic path with
    well-defined turns illustrates odometry error accumulation, and by
    integration tests that need exactly repeatable trajectories.

    Args:
        waypoints: at least two points; the robot starts at the first one.
        speed: constant movement speed in m/s.
        start_time: simulation time at which movement begins; before it the
            robot sits at the first waypoint.
        loop: if True, the robot returns to the first waypoint and repeats.
    """

    def __init__(
        self,
        waypoints: Sequence[Vec2],
        speed: float,
        start_time: float = 0.0,
        loop: bool = False,
    ) -> None:
        if len(waypoints) < 2:
            raise ValueError(
                "ScriptedMobility needs >= 2 waypoints, got %d"
                % len(waypoints)
            )
        if speed <= 0:
            raise ValueError("speed must be positive, got %r" % speed)
        self._waypoints = list(waypoints)
        self._speed = speed
        self._start_time = start_time
        self._loop = loop
        self._segments = self._build_segments()
        self._total_time = self._segments[-1][1] if self._segments else 0.0

    def _build_segments(self) -> List[Tuple[float, float, Vec2, Vec2]]:
        """Return (start_offset, end_offset, from, to) per segment."""
        points = list(self._waypoints)
        if self._loop:
            points.append(points[0])
        segments = []
        offset = 0.0
        for a, b in zip(points, points[1:]):
            duration = a.distance_to(b) / self._speed
            # repro: noqa[REP004] exact-zero skip of degenerate segments
            if duration == 0.0:
                continue
            segments.append((offset, offset + duration, a, b))
            offset += duration
        if not segments:
            raise ValueError("waypoints are all identical")
        return segments

    @property
    def travel_time(self) -> float:
        """Time to traverse the whole path once."""
        return self._total_time

    def pose(self, t: float) -> Pose:
        elapsed = t - self._start_time
        if elapsed <= 0.0:
            first = self._segments[0]
            return Pose(first[2], first[2].heading_to(first[3]), 0.0)
        if self._loop:
            elapsed = math.fmod(elapsed, self._total_time)
        if elapsed >= self._total_time:
            last = self._segments[-1]
            return Pose(last[3], last[2].heading_to(last[3]), 0.0)
        for start, end, a, b in self._segments:
            if start <= elapsed < end:
                frac = (elapsed - start) / (end - start)
                position = a + (b - a) * frac
                return Pose(position, a.heading_to(b), self._speed)
        # Floating-point edge: treat as path end.
        last = self._segments[-1]
        return Pose(last[3], last[2].heading_to(last[3]), 0.0)
