"""Random waypoint mobility, as specified in the paper's §3.

    "As the simulation starts, each robot is given a random command to move
    to a random destination in the given area and starts moving towards the
    chosen destination with a speed chosen uniformly between 0.1 and v_max
    meters/second.  Once the robot reaches the destination, it is given a
    new random command."

The model optionally supports a rest time at each destination ("each robot
moves towards a particular area, performs a task, and then moves to the next
position") — the rest duration is the ``d_rest`` knowledge that the MRMM
mesh-pruning algorithm exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional

import numpy as np

from repro.mobility.base import MobilityModel, Pose
from repro.util.geometry import Rect, Vec2


@dataclass(frozen=True)
class Leg:
    """One movement leg: travel from ``start`` to ``dest`` then rest.

    Attributes:
        start: departure point.
        dest: destination waypoint.
        speed: travel speed in m/s.
        depart_time: simulation time the robot leaves ``start``.
        arrive_time: simulation time the robot reaches ``dest``.
        rest_until: simulation time the robot departs again (equals
            ``arrive_time`` when there is no rest phase).
    """

    start: Vec2
    dest: Vec2
    speed: float
    depart_time: float
    arrive_time: float
    rest_until: float

    @cached_property
    def heading(self) -> float:
        # cached: a leg's heading is queried on every pose() while the
        # leg is active, and atan2 per query was visible in the profile.
        return self.start.heading_to(self.dest)

    @cached_property
    def length(self) -> float:
        return self.start.distance_to(self.dest)

    def position_at(self, t: float) -> Vec2:
        """Position on this leg at time ``t`` (clamped to the leg).

        The interpolation is written out per component — the same float
        operations, in the same order, as the historical
        ``start + (dest - start) * frac`` vector expression (and as the
        SoA world's array interpolation), without the two intermediate
        ``Vec2`` allocations.
        """
        if t <= self.depart_time:
            return self.start
        if t >= self.arrive_time:
            return self.dest
        frac = (t - self.depart_time) / (self.arrive_time - self.depart_time)
        start = self.start
        dest = self.dest
        return Vec2(
            start.x + (dest.x - start.x) * frac,
            start.y + (dest.y - start.y) * frac,
        )


class WaypointMobility(MobilityModel):
    """The paper's random waypoint model over a rectangular area.

    Queries must have non-decreasing times; legs are generated lazily as the
    clock advances, with all randomness drawn from the supplied generator so
    that trajectories are reproducible and independent of query granularity.

    Args:
        area: the deployment rectangle.
        rng: random stream for this robot's movement.
        v_min: minimum speed in m/s (paper: 0.1).
        v_max: maximum speed in m/s (paper: 0.5 or 2.0).
        rest_time_max: maximum rest duration at each destination; the actual
            rest is drawn uniformly from ``[0, rest_time_max]``.  The paper's
            headline experiments use 0 (continuous movement).
        start: optional fixed start position; defaults to uniform random.
        memoize: keep a one-entry pose memo (the ``pose_memo`` kernel of
            :class:`~repro.kernels.KernelConfig`).  Several subsystems
            query the same robot at the same instant within one event
            (channel offer, delivery interference, odometry read, metric
            sampling); the pose is a pure function of ``t`` once the legs
            are drawn, and repeat queries never draw additional
            randomness, so replaying the cached pose is bit-identical.
    """

    def __init__(
        self,
        area: Rect,
        rng: np.random.Generator,
        v_min: float = 0.1,
        v_max: float = 2.0,
        rest_time_max: float = 0.0,
        start: Optional[Vec2] = None,
        memoize: bool = False,
    ) -> None:
        if not 0 < v_min <= v_max:
            raise ValueError(
                "need 0 < v_min <= v_max, got v_min=%r v_max=%r"
                % (v_min, v_max)
            )
        if rest_time_max < 0:
            raise ValueError(
                "rest_time_max must be non-negative, got %r" % rest_time_max
            )
        self._area = area
        self._rng = rng
        self._v_min = v_min
        self._v_max = v_max
        self._rest_time_max = rest_time_max
        if start is None:
            start = self._random_point()
        elif not area.contains(start):
            raise ValueError("start %r outside area %r" % (start, area))
        self._legs: List[Leg] = [self._new_leg(start, depart_time=0.0)]
        self._leg_index = 0
        self._last_query_time = 0.0
        # One-entry pose memo; None when the kernel is off.
        self._pose_memo: Optional[dict] = {} if memoize else None
        # SoA mirror (the soa_state kernel); None when unbound.
        self._world = None
        self._world_row = 0

    @property
    def area(self) -> Rect:
        return self._area

    @property
    def v_max(self) -> float:
        return self._v_max

    @property
    def legs_generated(self) -> int:
        """Number of legs created so far (grows as time advances)."""
        return len(self._legs)

    def _random_point(self) -> Vec2:
        return Vec2(
            float(self._rng.uniform(self._area.x_min, self._area.x_max)),
            float(self._rng.uniform(self._area.y_min, self._area.y_max)),
        )

    def _new_leg(self, start: Vec2, depart_time: float) -> Leg:
        dest = self._random_point()
        # Degenerate zero-length legs would stall time; redraw (the chance
        # of an exact coincidence is ~0 but redrawing costs nothing).
        # repro: noqa[REP004] exact coincidence is the degenerate case
        while dest.distance_to(start) == 0.0:
            dest = self._random_point()
        speed = float(self._rng.uniform(self._v_min, self._v_max))
        arrive = depart_time + start.distance_to(dest) / speed
        if self._rest_time_max > 0.0:
            rest = float(self._rng.uniform(0.0, self._rest_time_max))
        else:
            rest = 0.0
        return Leg(start, dest, speed, depart_time, arrive, arrive + rest)

    def current_leg(self, t: float) -> Leg:
        """Return the leg active at time ``t``, generating legs as needed.

        A robot resting at a destination is still "on" the leg that brought
        it there until ``rest_until`` passes.

        Raises:
            ValueError: if ``t`` precedes an earlier query (the model only
                moves forward in time).
        """
        if t < self._last_query_time:
            raise ValueError(
                "mobility queried backwards in time: %r < %r"
                % (t, self._last_query_time)
            )
        self._last_query_time = t
        leg = self._legs[self._leg_index]
        if t >= leg.rest_until:
            while t >= leg.rest_until:
                self._leg_index += 1
                if self._leg_index == len(self._legs):
                    self._legs.append(
                        self._new_leg(leg.dest, depart_time=leg.rest_until)
                    )
                leg = self._legs[self._leg_index]
            if self._world is not None:
                self._write_through(leg)
        return leg

    def bind_world(self, world, row: int) -> None:
        """Mirror this trajectory's active leg into a shared SoA block.

        Registers with the :class:`~repro.sim.world.WorldState` and
        writes the currently active leg through; every later leg
        advancement keeps the mirror current.
        """
        self._world = world
        self._world_row = row
        world.bind_mobility(row, self)
        self._write_through(self._legs[self._leg_index])

    def _write_through(self, leg: Leg) -> None:
        self._world.set_leg(
            self._world_row,
            leg.start.x,
            leg.start.y,
            leg.dest.x,
            leg.dest.y,
            leg.depart_time,
            leg.arrive_time,
            leg.rest_until,
        )

    def pose(self, t: float) -> Pose:
        memo = self._pose_memo
        if memo is not None:
            cached = memo.get(t)
            if cached is not None:
                return cached
        leg = self.current_leg(t)
        if t >= leg.arrive_time:
            # Resting at the destination.
            pose = Pose(leg.dest, leg.heading, 0.0)
        elif t <= leg.depart_time:
            pose = Pose(leg.start, leg.heading, leg.speed)
        else:
            # Inlined Leg.position_at mid-leg branch (same float ops);
            # the clamp branches are hoisted into this if/elif chain.
            frac = (t - leg.depart_time) / (
                leg.arrive_time - leg.depart_time
            )
            start = leg.start
            dest = leg.dest
            pose = Pose(
                Vec2(
                    start.x + (dest.x - start.x) * frac,
                    start.y + (dest.y - start.y) * frac,
                ),
                leg.heading,
                leg.speed,
            )
        if memo is not None:
            if memo:
                memo.clear()
            memo[t] = pose
        return pose

    def time_to_waypoint(self, t: float) -> float:
        """Seconds until the robot next reaches a waypoint (0 if resting)."""
        leg = self.current_leg(t)
        return max(0.0, leg.arrive_time - t)

    def rest_remaining(self, t: float) -> float:
        """Seconds of rest remaining at the current destination (0 if moving)."""
        leg = self.current_leg(t)
        if t < leg.arrive_time:
            return 0.0
        return max(0.0, leg.rest_until - t)
