"""Odometry sensing with the paper's error model (§3).

    "We assume odometry displacement error to be zero-mean Gaussian with
    standard deviation 0.1 m/s and assume the angular odometry error to also
    be zero-mean Gaussian with standard deviation 10 degrees."

The sensor observes the true trajectory at successive sample times and
reports noisy *increments*: distance travelled and heading change since the
previous sample.  Three error components are modelled:

1. displacement noise applied per second of motion (the σ = 0.1 m/s spec),
2. per-turn angular noise — every turn is measured with Gaussian error,
   exactly the mechanism Figure 5 illustrates ("when the robot turns by θ
   ... it estimates a turn by θ'"),
3. a continuous heading random walk (gyro/encoder drift) accumulating with
   the square root of motion time.

Component 3 is not stated explicitly in the paper but is required to
reconcile its two headline numbers: odometry-only error must grow toward
~100 m over 30 minutes (Figure 4) while CoCoA's per-beacon-period
dead-reckoning drift must stay small enough for a single-digit-metre time
average (Figure 7).  The default rate (1.5°/√s of motion) was calibrated
against exactly those two constraints; see DESIGN.md §5 and
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.mobility.base import MobilityModel
from repro.util.geometry import normalize_angle


@dataclass(frozen=True)
class OdometryNoise:
    """Noise parameters for the odometry sensor.

    Attributes:
        displacement_std_per_s: σ of the Gaussian displacement error, in
            metres per second of motion (paper: 0.1 m/s).
        angular_std_rad: σ of the Gaussian heading-change error in radians
            (paper: 10°).
        heading_drift_std_rad_per_sqrt_s: σ of the continuous heading random
            walk, in radians per square-root second of motion (calibrated:
            1.5°/√s; see the module docstring).
        turn_threshold_rad: heading changes smaller than this are treated as
            driving straight and incur no angular error; it models the
            encoder's angular resolution.
    """

    displacement_std_per_s: float = 0.1
    angular_std_rad: float = math.radians(10.0)
    heading_drift_std_rad_per_sqrt_s: float = math.radians(1.5)
    turn_threshold_rad: float = math.radians(0.5)

    def __post_init__(self) -> None:
        if self.displacement_std_per_s < 0:
            raise ValueError(
                "displacement_std_per_s must be non-negative, got %r"
                % self.displacement_std_per_s
            )
        if self.angular_std_rad < 0:
            raise ValueError(
                "angular_std_rad must be non-negative, got %r"
                % self.angular_std_rad
            )
        if self.heading_drift_std_rad_per_sqrt_s < 0:
            raise ValueError(
                "heading_drift_std_rad_per_sqrt_s must be non-negative, "
                "got %r" % self.heading_drift_std_rad_per_sqrt_s
            )
        if self.turn_threshold_rad < 0:
            raise ValueError(
                "turn_threshold_rad must be non-negative, got %r"
                % self.turn_threshold_rad
            )

    @staticmethod
    def noiseless() -> "OdometryNoise":
        """A perfect odometer — used by tests to isolate other error sources."""
        return OdometryNoise(0.0, 0.0, 0.0, 0.0)

    @staticmethod
    def paper_defaults() -> "OdometryNoise":
        """The calibrated error model used by all paper experiments."""
        return OdometryNoise()


@dataclass(frozen=True)
class OdometryReading:
    """One odometry increment between consecutive sample times.

    Attributes:
        t_from: start of the interval.
        t_to: end of the interval.
        distance: measured distance travelled (metres, noisy, can be
            slightly negative for tiny motions under heavy noise).
        heading_change: measured change in heading (radians, noisy).
    """

    t_from: float
    t_to: float
    distance: float
    heading_change: float

    @property
    def dt(self) -> float:
        return self.t_to - self.t_from


class OdometrySensor:
    """Produces noisy odometry increments from a true trajectory.

    Args:
        mobility: the robot's true mobility model.
        rng: this robot's odometry noise stream.
        noise: error model parameters.
        start_time: time of the first (implicit) sample.
    """

    def __init__(
        self,
        mobility: MobilityModel,
        rng: np.random.Generator,
        noise: OdometryNoise = OdometryNoise(),
        start_time: float = 0.0,
    ) -> None:
        self._mobility = mobility
        self._rng = rng
        self._noise = noise
        # Hoisted noise parameters: read() runs once per metric sample
        # per robot and the frozen-dataclass attribute walks showed up
        # in its profile.
        self._disp_std = noise.displacement_std_per_s
        self._ang_std = noise.angular_std_rad
        self._turn_thresh = noise.turn_threshold_rad
        self._drift_std = noise.heading_drift_std_rad_per_sqrt_s
        self._last_time = start_time
        pose = mobility.pose(start_time)
        self._last_position = pose.position
        self._last_heading = pose.heading

    @property
    def noise(self) -> OdometryNoise:
        return self._noise

    @property
    def last_sample_time(self) -> float:
        return self._last_time

    def read(self, t: float) -> OdometryReading:
        """Sample the odometer, returning the increment since the last read.

        Raises:
            ValueError: if ``t`` is not after the previous sample time.
        """
        if t <= self._last_time:
            raise ValueError(
                "odometry must be read at strictly increasing times: "
                "%r <= %r" % (t, self._last_time)
            )
        pose = self._mobility.pose(t)
        dt = t - self._last_time
        # Inlined Vec2.distance_to (same hypot, same operand order).
        position = pose.position
        last = self._last_position
        true_distance = math.hypot(position.x - last.x, position.y - last.y)
        true_turn = normalize_angle(pose.heading - self._last_heading)

        distance = true_distance
        if self._disp_std > 0.0 and true_distance > 0.0:
            # The σ = 0.1 m/s spec scales with elapsed motion time.
            distance += float(
                self._rng.normal(0.0, self._disp_std * dt)
            )
        heading_change = true_turn
        if self._ang_std > 0.0 and abs(true_turn) > self._turn_thresh:
            heading_change += float(
                self._rng.normal(0.0, self._ang_std)
            )
        if self._drift_std > 0.0 and true_distance > 0.0:
            # Gyro/encoder drift: a random walk whose variance grows with
            # motion time, hence σ ∝ √dt per increment.
            heading_change += float(
                self._rng.normal(0.0, self._drift_std * math.sqrt(dt))
            )

        self._last_time = t
        self._last_position = position
        self._last_heading = pose.heading
        return OdometryReading(t - dt, t, distance, heading_change)
