"""Regeneration of every evaluation figure in the paper.

Each ``run_fig*`` function reproduces the data behind one figure and
returns plain Python/numpy structures.  The benchmarks print them; tests
assert their shapes (who wins, where the knees fall).

The multi-point runners (Figures 4, 6, 7, 9, 10 and the MRMM ablation)
declare their scenario runs as :class:`~repro.orchestrator.jobs.SweepJob`
lists and execute them through
:func:`~repro.orchestrator.executor.run_sweep`: pass ``jobs=N`` to fan
the points out over worker processes and ``cache=`` a
:class:`~repro.orchestrator.cache.ResultCache` to make warm reruns skip
simulation entirely.

Figures 2 and 3 are architecture diagrams (the CoCoA time-line and the
MRMM sync mesh) and have no data to regenerate; the system behaviour they
describe is exercised by the coordination and multicast test suites.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.calibration import build_pdf_table
from repro.core.config import CoCoAConfig, LocalizationMode, MulticastProtocol
from repro.core.team import CoCoATeam
from repro.experiments.metrics import ErrorSummary, cdf_points, summarize_errors
from repro.experiments.presets import (
    fig4_config,
    fig6_config,
    fig7_config,
    fig9_config,
    fig10_config,
    headline_config,
)
from repro.experiments.runner import SharedCalibration
from repro.mobility.base import ScriptedMobility
from repro.mobility.dead_reckoning import DeadReckoning
from repro.mobility.odometry import OdometryNoise, OdometrySensor
from repro.net.phy import PathLossModel, ReceiverModel
from repro.orchestrator.cache import ResultCache
from repro.orchestrator.executor import run_sweep
from repro.orchestrator.jobs import SweepJob
from repro.orchestrator.progress import ProgressListener
from repro.sim.rng import RandomStreams
from repro.util.geometry import Vec2


def run_fig1(
    rssi_near_dbm: float = -52.0,
    rssi_far_dbm: float = -86.0,
    n_samples: int = 120_000,
    master_seed: int = 1,
    path_loss: Optional[PathLossModel] = None,
) -> Dict:
    """Figure 1: the PDF-versus-distance of two RSSI bins.

    Returns, for each requested RSSI, the fitted distribution's metadata
    plus a Gaussianity diagnostic (excess kurtosis and skewness of the
    calibration samples in that bin): the near bin should be approximately
    Gaussian, the far bin visibly not.
    """
    if path_loss is None:
        path_loss = PathLossModel()
    rng = RandomStreams(master_seed).get("calibration")
    result = build_pdf_table(path_loss, rng, n_samples=n_samples)
    table = result.table

    # Re-sample the channel to compute shape diagnostics per requested bin.
    diag_rng = RandomStreams(master_seed).get("fig1-diagnostics")
    distances = diag_rng.uniform(1.0, table.support_max_m, size=n_samples)
    rssi = np.asarray(path_loss.sample_rssi(distances, diag_rng))
    keep = rssi >= ReceiverModel().sensitivity_dbm
    distances, rssi = distances[keep], rssi[keep]

    out: Dict = {"bins": {}, "calibration": result}
    for target in (rssi_near_dbm, rssi_far_dbm):
        key = int(round(target))
        samples = distances[np.round(rssi).astype(int) == key]
        dist = table.bin_for(target)
        xs = np.linspace(0.0, table.support_max_m, 400)
        skew = kurt = float("nan")
        if samples.size > 10:
            centered = samples - samples.mean()
            std = samples.std()
            if std > 0:
                skew = float((centered**3).mean() / std**3)
                kurt = float((centered**4).mean() / std**4 - 3.0)
        out["bins"][key] = {
            "rssi_dbm": key,
            "is_gaussian": dist.is_gaussian,
            "mean_m": dist.mean_m,
            "std_m": dist.std_m,
            "pdf_x_m": xs,
            "pdf_y": dist.pdf(xs),
            "sample_skewness": skew,
            "sample_excess_kurtosis": kurt,
            "n_samples": int(samples.size),
        }
    return out


def run_fig4(
    v_maxes: Sequence[float] = (0.5, 2.0),
    duration_s: float = 1800.0,
    master_seed: int = 1,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
    telemetry_path: Optional[str] = None,
) -> Dict[float, Dict]:
    """Figure 4: localization error over time using only odometry."""
    sweep = [
        SweepJob(
            config=fig4_config(
                v_max, duration_s=duration_s, master_seed=master_seed
            ),
            name="fig4 v_max=%g" % v_max,
            key=v_max,
            telemetry=telemetry_path is not None,
        )
        for v_max in v_maxes
    ]
    outcome = run_sweep(
        sweep, n_jobs=jobs, cache=cache, progress=progress,
        telemetry_path=telemetry_path,
    )
    out: Dict[float, Dict] = {}
    for job, result in zip(sweep, outcome.results):
        out[job.key] = {
            "times": result.times,
            "mean_error": result.mean_error_series(),
            "summary": summarize_errors(result.errors),
        }
    return out


def run_fig5(
    speed: float = 1.0,
    master_seed: int = 1,
    noise: Optional[OdometryNoise] = None,
) -> Dict:
    """Figure 5: one robot's real path versus its odometry estimate.

    Drives a deterministic multi-turn path (six waypoints, like the
    paper's illustration) and records the true and dead-reckoned positions
    at every waypoint, showing how the error compounds turn by turn.
    """
    if noise is None:
        noise = OdometryNoise()
    waypoints = [
        Vec2(10.0, 10.0),
        Vec2(90.0, 20.0),
        Vec2(110.0, 80.0),
        Vec2(60.0, 120.0),
        Vec2(140.0, 150.0),
        Vec2(180.0, 90.0),
    ]
    mobility = ScriptedMobility(waypoints, speed=speed)
    rng = RandomStreams(master_seed).get("fig5")
    sensor = OdometrySensor(mobility, rng, noise=noise)
    pose0 = mobility.pose(0.0)
    reckoner = DeadReckoning(pose0.position, pose0.heading)

    true_path: List[Vec2] = [pose0.position]
    est_path: List[Vec2] = [pose0.position]
    errors: List[float] = [0.0]
    horizon = mobility.travel_time
    t = 0.0
    while t < horizon:
        t = min(t + 1.0, horizon)
        est = reckoner.advance(sensor.read(t))
        true = mobility.position(t)
        true_path.append(true)
        est_path.append(est)
        errors.append(est.distance_to(true))
    return {
        "waypoints": waypoints,
        "true_path": true_path,
        "estimated_path": est_path,
        "errors": np.array(errors),
        "final_error_m": errors[-1],
        "path_length_m": sum(
            a.distance_to(b) for a, b in zip(waypoints, waypoints[1:])
        ),
    }


def run_fig6(
    beacon_periods_s: Sequence[float] = (10.0, 50.0, 100.0, 300.0),
    duration_s: float = 1800.0,
    master_seed: int = 1,
    calibration: Optional[SharedCalibration] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
    telemetry_path: Optional[str] = None,
) -> Dict[float, Dict]:
    """Figure 6: RF-only localization error over time for several ``T``."""
    cal = calibration if calibration is not None else SharedCalibration()
    sweep = [
        SweepJob(
            config=fig6_config(
                period, duration_s=duration_s, master_seed=master_seed
            ),
            name="fig6 T=%g" % period,
            key=period,
            telemetry=telemetry_path is not None,
        )
        for period in beacon_periods_s
    ]
    outcome = run_sweep(
        sweep, n_jobs=jobs, cache=cache, progress=progress, calibration=cal,
        telemetry_path=telemetry_path,
    )
    out: Dict[float, Dict] = {}
    for job, result in zip(sweep, outcome.results):
        period = job.key
        out[period] = {
            "times": result.times,
            "mean_error": result.mean_error_series(),
            "summary": summarize_errors(
                result.errors,
                skip_first_s=min(1.1 * period + 5.0, duration_s / 2),
            ),
        }
    return out


def run_fig7(
    v_maxes: Sequence[float] = (0.5, 2.0),
    duration_s: float = 1800.0,
    master_seed: int = 1,
    calibration: Optional[SharedCalibration] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
    telemetry_path: Optional[str] = None,
) -> Dict[float, Dict[str, Dict]]:
    """Figure 7: odometry vs RF-only vs CoCoA at T = 100 s."""
    cal = calibration if calibration is not None else SharedCalibration()
    modes = (
        LocalizationMode.ODOMETRY_ONLY,
        LocalizationMode.RF_ONLY,
        LocalizationMode.COCOA,
    )
    sweep = [
        SweepJob(
            config=fig7_config(
                mode, v_max, duration_s=duration_s, master_seed=master_seed
            ),
            name="fig7 v_max=%g %s" % (v_max, mode.value),
            key=(v_max, mode.value),
            telemetry=telemetry_path is not None,
        )
        for v_max in v_maxes
        for mode in modes
    ]
    outcome = run_sweep(
        sweep, n_jobs=jobs, cache=cache, progress=progress, calibration=cal,
        telemetry_path=telemetry_path,
    )
    out: Dict[float, Dict[str, Dict]] = {v_max: {} for v_max in v_maxes}
    for job, result in zip(sweep, outcome.results):
        v_max, mode_value = job.key
        out[v_max][mode_value] = {
            "times": result.times,
            "mean_error": result.mean_error_series(),
            "summary": summarize_errors(result.errors),
        }
    return out


def run_fig8(
    duration_s: float = 1800.0,
    master_seed: int = 1,
    window_index: Optional[int] = None,
    calibration: Optional[SharedCalibration] = None,
) -> Dict[str, Dict]:
    """Figure 8: CDF of the localization error at three instants.

    The instants are the paper's: the end of a beacon period (just before
    the next transmit window), the end of a transmit window (right after
    localization), and the middle of a beacon period (radio asleep).
    Instants are derived from the Sync robot's clock so they track the
    team's actual (drifting) schedule.
    """
    cal = calibration if calibration is not None else SharedCalibration()
    config = headline_config(duration_s=duration_s, master_seed=master_seed)
    team = CoCoATeam(config, pdf_table=cal.table_for(config))
    result = team.run()
    sync_clock = team.nodes[0].coordinator.clock
    T, t = config.beacon_period_s, config.transmit_window_s
    if window_index is None:
        window_index = max(2, int(0.45 * duration_s / T))

    local_instants = {
        "end_of_beacon_period": window_index * T - 2.0,
        "end_of_transmit_window": window_index * T + t + 1.0,
        "middle_of_beacon_period": window_index * T + t + (T - t) / 2.0,
    }
    out: Dict[str, Dict] = {}
    for name, local in local_instants.items():
        true_time = sync_clock.true_time_of(local)
        snapshot = result.error_snapshot(true_time)
        xs, ys = cdf_points(snapshot)
        out[name] = {
            "time_s": true_time,
            "errors": snapshot,
            "cdf_x": xs,
            "cdf_y": ys,
            "median_m": float(np.median(snapshot)),
            "p90_m": float(np.percentile(snapshot, 90.0)),
        }
    return out


def run_fig9(
    beacon_periods_s: Sequence[float] = (10.0, 50.0, 100.0, 300.0),
    duration_s: float = 1800.0,
    master_seed: int = 1,
    calibration: Optional[SharedCalibration] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
    telemetry_path: Optional[str] = None,
) -> Dict[float, Dict]:
    """Figure 9: impact of ``T`` on error (a) and on energy with/without
    coordination (b)."""
    cal = calibration if calibration is not None else SharedCalibration()
    sweep = [
        SweepJob(
            config=fig9_config(
                period,
                coordination=coordination,
                duration_s=duration_s,
                master_seed=master_seed,
            ),
            name="fig9 T=%g %s"
            % (period, "coord" if coordination else "no-coord"),
            key=(period, coordination),
            telemetry=telemetry_path is not None,
        )
        for period in beacon_periods_s
        for coordination in (True, False)
    ]
    outcome = run_sweep(
        sweep, n_jobs=jobs, cache=cache, progress=progress, calibration=cal,
        telemetry_path=telemetry_path,
    )
    by_key = outcome.by_key()
    out: Dict[float, Dict] = {}
    for period in beacon_periods_s:
        coord = by_key[(period, True)]
        no_coord = by_key[(period, False)]
        out[period] = {
            "times": coord.times,
            "mean_error": coord.mean_error_series(),
            "summary": summarize_errors(
                coord.errors, skip_first_s=min(period, duration_s / 2)
            ),
            "energy_coordinated_j": coord.total_energy_j(),
            "energy_uncoordinated_j": no_coord.total_energy_j(),
            "energy_ratio": (
                no_coord.total_energy_j() / coord.total_energy_j()
            ),
        }
    return out


def run_fig10(
    anchor_counts: Sequence[int] = (5, 15, 25, 35),
    duration_s: float = 1800.0,
    master_seed: int = 1,
    calibration: Optional[SharedCalibration] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
    telemetry_path: Optional[str] = None,
) -> Dict[int, Dict]:
    """Figure 10: impact of the number of robots with localization
    devices."""
    cal = calibration if calibration is not None else SharedCalibration()
    sweep = [
        SweepJob(
            config=fig10_config(
                count, duration_s=duration_s, master_seed=master_seed
            ),
            name="fig10 anchors=%d" % count,
            key=count,
            telemetry=telemetry_path is not None,
        )
        for count in anchor_counts
    ]
    outcome = run_sweep(
        sweep, n_jobs=jobs, cache=cache, progress=progress, calibration=cal,
        telemetry_path=telemetry_path,
    )
    out: Dict[int, Dict] = {}
    for job, result in zip(sweep, outcome.results):
        count = job.key
        summary = summarize_errors(
            result.errors,
            skip_first_s=min(
                1.1 * result.config.beacon_period_s + 5.0, duration_s / 2
            ),
        )
        out[count] = {
            "times": result.times,
            "mean_error": result.mean_error_series(),
            "summary": summary,
            "windows_without_fix": result.windows_without_fix,
        }
    return out


def run_mrmm_ablation(
    duration_s: float = 900.0,
    master_seed: int = 1,
    calibration: Optional[SharedCalibration] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
    telemetry_path: Optional[str] = None,
) -> Dict[str, Dict]:
    """§2.3 claim: MRMM's pruning versus plain ODMRP.

    Runs the identical CoCoA scenario with each multicast protocol and
    reports control overhead, data transmissions and SYNC delivery.
    """
    cal = calibration if calibration is not None else SharedCalibration()
    sweep = [
        SweepJob(
            config=headline_config(
                duration_s=duration_s,
                master_seed=master_seed,
                multicast=protocol,
            ),
            name="mrmm-ablation %s" % protocol.value,
            key=protocol.value,
            telemetry=telemetry_path is not None,
        )
        for protocol in (MulticastProtocol.ODMRP, MulticastProtocol.MRMM)
    ]
    outcome = run_sweep(
        sweep, n_jobs=jobs, cache=cache, progress=progress, calibration=cal,
        telemetry_path=telemetry_path,
    )
    out: Dict[str, Dict] = {}
    for job, result in zip(sweep, outcome.results):
        stats = result.multicast_stats
        control = stats.jq_originated + stats.jq_forwarded + stats.jr_sent
        out[job.key] = {
            "control_packets": control,
            "data_forwarded": stats.data_forwarded,
            "data_delivered": stats.data_delivered,
            "forwards_suppressed": stats.forwards_suppressed,
            "syncs_received": result.syncs_received,
            "error_summary": summarize_errors(result.errors),
            "total_energy_j": result.total_energy_j(),
        }
    return out
