"""Metric helpers shared by the figure runners and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics of a localization-error series.

    Attributes:
        time_average_m: error averaged over robots and time — the scalar
            the paper quotes ("the average localization error over time").
        final_m: robot-averaged error at the last sample.
        max_m: peak of the robot-averaged error curve.
        median_m: median of all (robot, time) error samples.
        p90_m: 90th percentile of all error samples.
    """

    time_average_m: float
    final_m: float
    max_m: float
    median_m: float
    p90_m: float


def summarize_errors(
    errors: np.ndarray, skip_first_s: float = 0.0, sample_interval_s: float = 1.0
) -> ErrorSummary:
    """Summarize an ``(n_robots, n_samples)`` error matrix.

    Args:
        errors: per-robot, per-sample localization errors.
        skip_first_s: drop this much initial transient (e.g. the first
            beacon period, during which RF modes have no fix yet).
        sample_interval_s: seconds between samples.

    Raises:
        ValueError: if skipping removes every sample.
    """
    if errors.ndim != 2:
        raise ValueError(
            "errors must be 2-D (robots x samples), got shape %r"
            % (errors.shape,)
        )
    skip = int(round(skip_first_s / sample_interval_s))
    if skip >= errors.shape[1]:
        raise ValueError(
            "skip_first_s=%r removes all %d samples"
            % (skip_first_s, errors.shape[1])
        )
    window = errors[:, skip:]
    # NaN-aware throughout: failure-injection runs mark dead robots NaN.
    series = np.nanmean(window, axis=0)
    return ErrorSummary(
        time_average_m=float(np.nanmean(window)),
        final_m=float(series[-1]),
        max_m=float(np.nanmax(series)),
        median_m=float(np.nanmedian(window)),
        p90_m=float(np.nanpercentile(window, 90.0)),
    )


def cdf_points(samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample vector.

    Returns:
        ``(sorted_values, cumulative_fractions)`` — the x and y series of
        the paper's Figure 8 CDF plots.
    """
    values = np.sort(np.asarray(samples, dtype=float).ravel())
    if values.size == 0:
        return values, values
    fractions = np.arange(1, values.size + 1, dtype=float) / values.size
    return values, fractions


def fraction_below(samples: np.ndarray, threshold: float) -> float:
    """Fraction of error samples below ``threshold`` metres (e.g. the
    paper's "more than 90% of the robots have a localization error lower
    than 10 m")."""
    values = np.asarray(samples, dtype=float).ravel()
    if values.size == 0:
        return 0.0
    return float((values < threshold).mean())
