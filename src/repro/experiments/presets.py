"""Canonical scenario configurations for each paper experiment.

Every preset starts from the paper's §4 headline scenario (50 robots,
200 m × 200 m, 25 anchors, T = 100 s, t = 3 s, k = 3, 30 minutes) and
applies that figure's variations.  The ``duration_s`` and ``master_seed``
parameters exist so benchmarks can trade fidelity for speed explicitly.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import CoCoAConfig, LocalizationMode


def headline_config(
    duration_s: float = 1800.0, master_seed: int = 1, **overrides
) -> CoCoAConfig:
    """The paper's default scenario (§4 intro)."""
    config = CoCoAConfig(duration_s=duration_s, master_seed=master_seed)
    if overrides:
        config = replace(config, **overrides)
    return config


def fig4_config(
    v_max: float, duration_s: float = 1800.0, master_seed: int = 1
) -> CoCoAConfig:
    """§4.1 / Figure 4: odometry only, initial positions known.

    All 50 robots dead-reckon; there are no anchors, no beacons and no
    radio coordination (the radios are irrelevant to this experiment).
    """
    return headline_config(
        duration_s=duration_s,
        master_seed=master_seed,
        localization_mode=LocalizationMode.ODOMETRY_ONLY,
        n_anchors=0,
        coordination=False,
        v_max=v_max,
    )


def fig6_config(
    beacon_period_s: float,
    duration_s: float = 1800.0,
    master_seed: int = 1,
    v_max: float = 2.0,
) -> CoCoAConfig:
    """§4.2 / Figure 6: RF localization only, varying the period ``T``."""
    return headline_config(
        duration_s=duration_s,
        master_seed=master_seed,
        localization_mode=LocalizationMode.RF_ONLY,
        beacon_period_s=beacon_period_s,
        v_max=v_max,
    )


def fig7_config(
    mode: LocalizationMode,
    v_max: float,
    duration_s: float = 1800.0,
    master_seed: int = 1,
) -> CoCoAConfig:
    """§4.3 / Figure 7: the three strategies at T = 100 s."""
    if mode is LocalizationMode.ODOMETRY_ONLY:
        return fig4_config(
            v_max=v_max, duration_s=duration_s, master_seed=master_seed
        )
    return headline_config(
        duration_s=duration_s,
        master_seed=master_seed,
        localization_mode=mode,
        beacon_period_s=100.0,
        v_max=v_max,
    )


def fig9_config(
    beacon_period_s: float,
    coordination: bool = True,
    duration_s: float = 1800.0,
    master_seed: int = 1,
) -> CoCoAConfig:
    """§4.3.1 / Figure 9: CoCoA with varying ``T``; energy with and
    without coordinated sleeping."""
    return headline_config(
        duration_s=duration_s,
        master_seed=master_seed,
        beacon_period_s=beacon_period_s,
        coordination=coordination,
    )


def fig10_config(
    n_anchors: int, duration_s: float = 1800.0, master_seed: int = 1
) -> CoCoAConfig:
    """§4.3.2 / Figure 10: CoCoA with 5-35 anchor robots."""
    return headline_config(
        duration_s=duration_s,
        master_seed=master_seed,
        n_anchors=n_anchors,
    )
