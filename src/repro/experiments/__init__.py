"""Experiment harness: the paper's evaluation, reproducible end to end.

Each ``run_fig*`` function in :mod:`repro.experiments.figures` regenerates
the data behind one of the paper's evaluation figures and returns it as
plain dictionaries/arrays; the benchmark suite under ``benchmarks/`` prints
them as the rows/series the paper plots, and ``EXPERIMENTS.md`` records the
paper-vs-measured comparison.

Figures can be run at reduced scale (shorter simulated time, fewer seeds)
for quick regression checks; the benchmarks default to a scale that runs in
seconds and honour the ``REPRO_FULL=1`` environment variable for
full-fidelity 30-minute runs.
"""

from repro.experiments.metrics import (
    ErrorSummary,
    cdf_points,
    summarize_errors,
)
from repro.experiments.presets import (
    fig4_config,
    fig6_config,
    fig7_config,
    fig9_config,
    fig10_config,
    headline_config,
)
from repro.experiments.resilience import (
    DEFENDED_DEFAULTS,
    example_fault_plan,
    run_resilience_sweep,
)
from repro.experiments.runner import SharedCalibration, run_scenario

__all__ = [
    "DEFENDED_DEFAULTS",
    "example_fault_plan",
    "run_resilience_sweep",
    "ErrorSummary",
    "summarize_errors",
    "cdf_points",
    "headline_config",
    "fig4_config",
    "fig6_config",
    "fig7_config",
    "fig9_config",
    "fig10_config",
    "SharedCalibration",
    "run_scenario",
]
