"""CSV export of figure data.

The benchmarks print human-readable tables; this module writes the same
series as CSV files so they can be plotted with any tool.  Each figure
gets one file with a header row; writers are plain ``csv`` so the export
works anywhere Python does.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

Number = Union[int, float]


def write_csv(
    path: str,
    header: Sequence[str],
    rows: Iterable[Sequence[Number]],
) -> str:
    """Write one CSV file, creating parent directories.

    Returns the path for chaining/logging.

    Raises:
        ValueError: if a row's width does not match the header.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in rows:
            if len(row) != len(header):
                raise ValueError(
                    "row width %d does not match header width %d"
                    % (len(row), len(header))
                )
            writer.writerow(row)
    return path


def export_error_series(
    path: str, series_by_label: Dict[str, Dict[str, np.ndarray]]
) -> str:
    """Export error-over-time curves (Figures 4, 6, 7, 9a, 10).

    Args:
        path: output CSV path.
        series_by_label: label -> {"times": ..., "mean_error": ...}; all
            series must share the same time base.

    Returns:
        The written path.

    Raises:
        ValueError: on empty input or mismatched time bases.
    """
    if not series_by_label:
        raise ValueError("no series to export")
    labels = sorted(series_by_label)
    times = np.asarray(series_by_label[labels[0]]["times"])
    for label in labels:
        other = np.asarray(series_by_label[label]["times"])
        if other.shape != times.shape or not np.allclose(other, times):
            raise ValueError(
                "series %r has a different time base" % label
            )
    header = ["time_s"] + ["error_m_%s" % label for label in labels]
    rows = []
    for i, t in enumerate(times):
        row = [float(t)]
        for label in labels:
            row.append(float(series_by_label[label]["mean_error"][i]))
        rows.append(row)
    return write_csv(path, header, rows)


def export_cdf(path: str, cdfs: Dict[str, Dict[str, np.ndarray]]) -> str:
    """Export CDF curves (Figure 8): one (x, y) column pair per instant."""
    if not cdfs:
        raise ValueError("no CDFs to export")
    labels = sorted(cdfs)
    header: List[str] = []
    for label in labels:
        header += ["%s_error_m" % label, "%s_fraction" % label]
    length = max(len(cdfs[label]["cdf_x"]) for label in labels)
    rows = []
    for i in range(length):
        row: List[float] = []
        for label in labels:
            xs = cdfs[label]["cdf_x"]
            ys = cdfs[label]["cdf_y"]
            if i < len(xs):
                row += [float(xs[i]), float(ys[i])]
            else:
                row += [float("nan"), float("nan")]
        rows.append(row)
    return write_csv(path, header, rows)


def export_summary_table(
    path: str,
    rows_by_key: Dict[Union[int, float, str], Dict[str, Number]],
    key_name: str = "parameter",
) -> str:
    """Export a parameter-sweep summary (Figures 9, 10, ablations).

    Args:
        path: output CSV path.
        rows_by_key: sweep value -> {metric: value}; all rows must share
            the same metric set.
        key_name: name of the sweep column.
    """
    if not rows_by_key:
        raise ValueError("no rows to export")
    keys = sorted(rows_by_key)
    metrics = sorted(rows_by_key[keys[0]])
    for key in keys:
        if sorted(rows_by_key[key]) != metrics:
            raise ValueError("row %r has different metrics" % (key,))
    header = [key_name] + list(metrics)
    rows = [[key] + [rows_by_key[key][m] for m in metrics] for key in keys]
    return write_csv(path, header, rows)
