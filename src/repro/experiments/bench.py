"""The hot-path kernel benchmark behind ``repro bench``.

:func:`run_hotpath_bench` times the pinned Fig.-7-shaped scenario (the
paper's §4.3 headline: 50 robots, 25 anchors, CoCoA at T = 100 s,
v_max = 2 m/s) end to end with every kernel on and with every kernel
off, and additionally times each kernel's own inner loop in isolation.
The two layers answer different questions:

- **End to end** — what a user of ``run_scenario`` actually gains.  The
  event-driven protocol machinery (radio state billing, MAC timers,
  per-delivery dispatch) runs identically under both kernel settings and
  bounds this ratio well below the per-loop gains.
- **Components** — what each kernel does to the loop it replaces
  (batched RSSI sampling vs. the scalar draw loop, LUT density lookup
  vs. exact evaluation, cached constraint fields vs. recomputation,
  the slotted time wheel vs. the binary heap on a pure event-loop
  workload, and coalesced frame delivery vs. per-frame events as a
  full-scenario ablation).  This is where the ≥3× hot-path target is
  measured.

``--profile`` additionally cProfiles one end-to-end run per kernel
variant and writes the cumtime-sorted tables next to the JSON, so the
next per-event-wall diagnosis starts from data instead of ad-hoc
scripts.

The report is written as ``BENCH_hotpath.json`` (no absolute
timestamps — reports must be content-comparable across runs) and
includes the scenario's content fingerprint so regressions can tell
"the code got slower" apart from "the scenario changed".
"""

from __future__ import annotations

import cProfile
import io
import json
import math
import pstats
import time
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.bayes import GridBayesFilter
from repro.core.config import CoCoAConfig, LocalizationMode
from repro.core.constraint_cache import ConstraintFieldCache
from repro.core.team import CoCoATeam
from repro.experiments.presets import fig7_config
from repro.experiments.runner import SharedCalibration
from repro.kernels import KERNELS_OFF, KERNELS_ON, KernelConfig
from repro.orchestrator.jobs import config_digest
from repro.sim.engine import Simulator
from repro.util.geometry import Vec2

__all__ = ["pinned_config", "profile_path_for", "run_hotpath_bench"]

#: Simulated seconds of the pinned scenario in the full / quick shapes.
DEFAULT_DURATION_S = 600.0
QUICK_DURATION_S = 120.0
#: End-to-end repeats per kernel variant in the full / quick shapes.
DEFAULT_REPEATS = 3
QUICK_REPEATS = 2


def pinned_config(
    seed: int = 1, duration_s: float = DEFAULT_DURATION_S
) -> CoCoAConfig:
    """The benchmark scenario: Figure 7's CoCoA arm at v_max = 2 m/s."""
    return fig7_config(
        LocalizationMode.COCOA,
        v_max=2.0,
        duration_s=duration_s,
        master_seed=seed,
    )


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    """Minimum wall time of ``repeats`` calls — the standard estimator
    for short loops, since scheduling noise only ever adds time."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _percentile(values: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(values, dtype=float), q))


def _time_one_run(
    config: CoCoAConfig,
    kernels: KernelConfig,
    calibration: SharedCalibration,
) -> Tuple[float, int]:
    team = CoCoATeam(
        config,
        pdf_table=calibration.table_for(config),
        kernels=kernels,
    )
    start = time.perf_counter()
    team.run()
    return time.perf_counter() - start, team.sim.events_processed


def _summarize_walls(walls: List[float], events: int) -> Dict[str, object]:
    p50 = _percentile(walls, 50.0)
    return {
        "wall_s": [round(w, 6) for w in walls],
        "wall_p50_s": round(p50, 6),
        "wall_p90_s": round(_percentile(walls, 90.0), 6),
        "events_processed": int(events),
        "events_per_s": round(events / p50, 1),
    }


def _run_end_to_end_pair(
    config: CoCoAConfig,
    calibration: SharedCalibration,
    repeats: int,
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Time the kernels-off and kernels-on variants, *interleaved*.

    Alternating OFF/ON per repeat instead of timing one block after the
    other means slow drift in machine load inflates both variants about
    equally, keeping their ratio honest.
    """
    off_walls: List[float] = []
    on_walls: List[float] = []
    off_events = on_events = 0
    for _ in range(repeats):
        wall, off_events = _time_one_run(config, KERNELS_OFF, calibration)
        off_walls.append(wall)
        wall, on_events = _time_one_run(config, KERNELS_ON, calibration)
        on_walls.append(wall)
    return (
        _summarize_walls(off_walls, off_events),
        _summarize_walls(on_walls, on_events),
    )


def _bench_rssi_sampling(
    config: CoCoAConfig, frames: int, timing_repeats: int
) -> Dict[str, float]:
    """Batched RSSI draw vs. the per-receiver scalar loop.

    One "frame" samples a realistic receiver count (everyone but the
    transmitter) at distances spread over the deployment area; both
    variants consume identical generator streams, which the kernel test
    suite separately verifies to be draw-for-draw equivalent.
    """
    phy = config.path_loss
    receivers = config.n_robots - 1
    shape_rng = np.random.default_rng(2006)
    distances = [
        float(d)
        for d in shape_rng.uniform(
            1.0, 0.75 * config.area.width, size=receivers
        )
    ]
    batch = np.asarray(distances)

    def scalar() -> None:
        rng = np.random.default_rng(1)
        for _ in range(frames):
            for d in distances:
                phy.sample_rssi(d, rng)

    def batched() -> None:
        rng = np.random.default_rng(1)
        for _ in range(frames):
            phy.sample_rssi_batch(batch, rng)

    scalar_s = _best_of(scalar, timing_repeats)
    batched_s = _best_of(batched, timing_repeats)
    return {
        "scalar_s": round(scalar_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 2),
    }


def _bench_pdf_eval(
    config: CoCoAConfig,
    calibration: SharedCalibration,
    evals: int,
    timing_repeats: int,
    lut_entries: int,
) -> Dict[str, float]:
    """LUT density lookup vs. exact per-bin evaluation on the real grid."""
    table = calibration.table_for(config)
    grid = GridBayesFilter(config.area, config.grid_resolution_m)
    beacon = Vec2(
        config.area.x_min + 0.31 * config.area.width,
        config.area.y_min + 0.57 * config.area.height,
    )
    distances = grid.compute_distance_field(beacon)
    lo, hi = table.rssi_range
    key = table.bin_key_for((lo + hi) / 2.0)
    out = np.empty_like(distances)

    def exact() -> None:
        for _ in range(evals):
            table.pdf_for_key(key, distances, out=out)

    def lut() -> None:
        for _ in range(evals):
            table.pdf_for_key(key, distances, out=out)

    table.set_lut(False)
    exact_s = _best_of(exact, timing_repeats)
    table.set_lut(True, lut_entries)
    table.pdf_for_key(key, distances)  # build the LUT outside the timer
    lut_s = _best_of(lut, timing_repeats)
    table.set_lut(False)
    return {
        "exact_s": round(exact_s, 6),
        "lut_s": round(lut_s, 6),
        "speedup": round(exact_s / lut_s, 2),
    }


def _bench_constraint_field(
    config: CoCoAConfig,
    calibration: SharedCalibration,
    rounds: int,
    timing_repeats: int,
    lut_entries: int,
) -> Dict[str, float]:
    """Full ``apply_beacon`` under both kernel settings.

    The uncached variant recomputes the distance field and evaluates the
    exact density per beacon, as every robot did before the kernel layer;
    the cached variant replays warmed constraint fields through the LUT
    path — the steady state of a team whose robots hear the same anchors.
    """
    table = calibration.table_for(config)
    shape_rng = np.random.default_rng(2006)
    lo, hi = table.rssi_range
    beacons = [
        (
            anchor_id,
            Vec2(
                float(
                    shape_rng.uniform(config.area.x_min, config.area.x_max)
                ),
                float(
                    shape_rng.uniform(config.area.y_min, config.area.y_max)
                ),
            ),
            float(shape_rng.uniform(lo, hi)),
        )
        for anchor_id in range(16)
    ]

    plain = GridBayesFilter(config.area, config.grid_resolution_m)

    def uncached() -> None:
        plain.reset_uniform()
        for _ in range(rounds):
            for anchor_id, beacon, rssi in beacons:
                plain.apply_beacon(beacon, rssi, table, anchor_id=anchor_id)

    cached_filter = GridBayesFilter(config.area, config.grid_resolution_m)
    cache = ConstraintFieldCache(capacity=max(128, 2 * len(beacons)))
    cached_filter.attach_constraint_cache(cache)

    def cached() -> None:
        cached_filter.reset_uniform()
        for _ in range(rounds):
            for anchor_id, beacon, rssi in beacons:
                cached_filter.apply_beacon(
                    beacon, rssi, table, anchor_id=anchor_id
                )

    table.set_lut(False)
    uncached_s = _best_of(uncached, timing_repeats)
    table.set_lut(True, lut_entries)
    cached()  # warm the cache and the LUTs outside the timer
    cached_s = _best_of(cached, timing_repeats)
    table.set_lut(False)
    return {
        "uncached_s": round(uncached_s, 6),
        "cached_s": round(cached_s, 6),
        "speedup": round(uncached_s / cached_s, 2),
    }


def _bench_event_loop(
    timers: int, sim_seconds: float, timing_repeats: int
) -> Dict[str, float]:
    """Slotted time wheel vs. binary heap on a pure event-loop workload.

    The synthetic population mirrors the simulator's own timer mix: many
    periodic timers with staggered sub-slot periods, each fire also
    rescheduling a short one-shot and cancelling the previous one — the
    schedule/cancel churn the radio busy-window events generate.  No
    science runs here; this isolates the queue data structure itself.

    Honest expectation: with heap entries already flattened to C-compared
    ``(time, seq, event)`` tuples, heapq is hard to beat and this row
    hovers near 1x at Fig.-7 populations — the end-to-end win comes from
    the *coalesced delivery* kernel removing events outright (see the
    ``delivery`` row).  The wheel's value is the scale-out regime and
    its strictly-O(1) insert for slot-local timers.
    """

    def make(run_slot: Optional[float]) -> Callable[[], None]:
        def run() -> None:
            sim = Simulator(wheel_slot_s=run_slot)
            handles: List[object] = [None] * timers

            def noop() -> None:
                pass

            def periodic(i: int, period: float) -> None:
                handle = handles[i]
                if handle is not None:
                    handle.cancel()
                handles[i] = sim.schedule(0.5, noop)
                if sim.now + period <= sim_seconds:
                    sim.schedule(period, periodic, i, period)

            for i in range(timers):
                period = 0.25 + (i % 40) * 0.05
                sim.schedule(period, periodic, i, period)
            sim.run(until=sim_seconds)

        return run

    heap_s = _best_of(make(None), timing_repeats)
    wheel_s = _best_of(make(1.0), timing_repeats)
    return {
        "heap_s": round(heap_s, 6),
        "wheel_s": round(wheel_s, 6),
        "speedup": round(heap_s / wheel_s, 2),
    }


def _bench_delivery(
    config: CoCoAConfig,
    calibration: SharedCalibration,
    timing_repeats: int,
) -> Dict[str, float]:
    """Coalesced frame delivery vs. per-frame events, everything else on.

    An ablation of the pinned scenario: both variants run the full team
    with every other kernel enabled, so the difference is exactly the
    merged delivery event plus the unmanaged (event-free) RX windows.
    """
    per_frame_kernels = replace(KERNELS_ON, coalesced_delivery=False)
    per_frame_walls: List[float] = []
    coalesced_walls: List[float] = []
    for _ in range(timing_repeats):
        # Interleaved, and timed inside _time_one_run so team
        # construction stays outside the measurement.
        per_frame_walls.append(
            _time_one_run(config, per_frame_kernels, calibration)[0]
        )
        coalesced_walls.append(
            _time_one_run(config, KERNELS_ON, calibration)[0]
        )
    per_frame_s = min(per_frame_walls)
    coalesced_s = min(coalesced_walls)
    return {
        "per_frame_s": round(per_frame_s, 6),
        "coalesced_s": round(coalesced_s, 6),
        "speedup": round(per_frame_s / coalesced_s, 2),
    }


def _profile_variant(
    config: CoCoAConfig,
    kernels: KernelConfig,
    calibration: SharedCalibration,
    top_n: int,
) -> str:
    """One profiled end-to-end run, rendered as cumtime-sorted text."""
    team = CoCoATeam(
        config,
        pdf_table=calibration.table_for(config),
        kernels=kernels,
    )
    profiler = cProfile.Profile()
    profiler.enable()
    team.run()
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top_n)
    return stream.getvalue()


def profile_path_for(out_path: str) -> str:
    """Where ``--profile`` output lands, next to the JSON report."""
    if out_path.endswith(".json"):
        return out_path[: -len(".json")] + "_profile.txt"
    return out_path + "_profile.txt"


def run_hotpath_bench(
    seed: int = 1,
    quick: bool = False,
    repeats: Optional[int] = None,
    out_path: Optional[str] = "BENCH_hotpath.json",
    profile: bool = False,
    profile_top_n: int = 40,
) -> Dict[str, object]:
    """Run the full benchmark and (optionally) write the JSON report.

    Args:
        seed: master seed of the pinned scenario.
        quick: CI smoke shape — a shorter scenario, fewer repeats and
            lighter component loops.
        repeats: end-to-end repeats per kernel variant; defaults to the
            shape's standard count.
        out_path: where to write the report; ``None`` skips the write.
        profile: additionally cProfile one end-to-end run per kernel
            variant and write the cumtime-sorted top tables next to the
            JSON (see :func:`profile_path_for`), so a per-event-wall
            diagnosis doesn't need ad-hoc scripts.
        profile_top_n: rows per profile table.

    Returns:
        The report dict (exactly what lands in the JSON file).
    """
    duration = QUICK_DURATION_S if quick else DEFAULT_DURATION_S
    if repeats is None:
        repeats = QUICK_REPEATS if quick else DEFAULT_REPEATS
    if repeats < 1:
        raise ValueError("repeats must be >= 1, got %d" % repeats)
    frames = 100 if quick else 400
    evals = 100 if quick else 400
    rounds = 4 if quick else 12
    timing_repeats = 3 if quick else 5
    loop_timers = 150
    loop_seconds = 100.0 if quick else 400.0

    config = pinned_config(seed=seed, duration_s=duration)
    calibration = SharedCalibration()
    calibration.table_for(config)  # calibrate outside every timer

    off, on = _run_end_to_end_pair(config, calibration, repeats)
    end_to_end_speedup = round(
        float(off["wall_p50_s"]) / float(on["wall_p50_s"]), 2
    )

    lut_entries = KERNELS_ON.lut_entries
    components = {
        "rssi_sampling": _bench_rssi_sampling(config, frames, timing_repeats),
        "pdf_eval": _bench_pdf_eval(
            config, calibration, evals, timing_repeats, lut_entries
        ),
        "constraint_field": _bench_constraint_field(
            config, calibration, rounds, timing_repeats, lut_entries
        ),
        "event_loop": _bench_event_loop(
            loop_timers, loop_seconds, timing_repeats
        ),
        "delivery": _bench_delivery(config, calibration, 2 if quick else 3),
    }
    hotpath_speedup = round(
        math.exp(
            sum(math.log(c["speedup"]) for c in components.values())
            / len(components)
        ),
        2,
    )

    report: Dict[str, object] = {
        "bench": "hotpath",
        "seed": seed,
        "quick": quick,
        "scenario": {
            "fingerprint": config_digest(config),
            "preset": "fig7 cocoa v_max=2.0",
            "n_robots": config.n_robots,
            "n_anchors": config.n_anchors,
            "beacon_period_s": config.beacon_period_s,
            "duration_s": duration,
        },
        "repeats": repeats,
        "end_to_end": {
            "kernels_off": off,
            "kernels_on": on,
            "speedup": end_to_end_speedup,
        },
        "components": components,
        "kernel_speedup": end_to_end_speedup,
        "hotpath_speedup": hotpath_speedup,
    }
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if profile:
        sections = []
        for label, kernels in (
            ("kernels_on", KERNELS_ON),
            ("kernels_off", KERNELS_OFF),
        ):
            sections.append(
                "==== %s (one end-to-end run, cumtime top %d) ====\n%s"
                % (
                    label,
                    profile_top_n,
                    _profile_variant(
                        config, kernels, calibration, profile_top_n
                    ),
                )
            )
        text = "\n".join(sections)
        target = profile_path_for(out_path or "BENCH_hotpath.json")
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
        report["profile_path"] = target
    return report
