"""Scenario execution helpers.

The PDF-Table calibration is a property of the radio hardware, not of any
particular scenario, so parameter sweeps share one table through
:class:`SharedCalibration` — both for physical fidelity (the paper
calibrates once) and to keep sweeps fast.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.calibration import build_pdf_table
from repro.core.config import CoCoAConfig, LocalizationMode
from repro.core.pdf_table import PdfTable
from repro.core.team import CoCoATeam, TeamResult
from repro.sim.rng import RandomStreams


class SharedCalibration:
    """Caches PDF Tables keyed by (channel, receiver, seed, samples)."""

    def __init__(self) -> None:
        self._tables: Dict[Tuple, PdfTable] = {}

    def table_for(self, config: CoCoAConfig) -> Optional[PdfTable]:
        """Return (building if needed) the table for a scenario's hardware.

        Returns ``None`` for scenarios that never use RF localization.
        """
        if (
            config.localization_mode is LocalizationMode.ODOMETRY_ONLY
            or config.n_anchors == 0
        ):
            return None
        key = (
            config.path_loss,
            config.receiver,
            config.master_seed,
            config.calibration_samples,
        )
        table = self._tables.get(key)
        if table is None:
            result = build_pdf_table(
                config.path_loss,
                RandomStreams(config.master_seed).get("calibration"),
                n_samples=config.calibration_samples,
                receiver=config.receiver,
            )
            table = result.table
            self._tables[key] = table
        return table


_default_calibration = SharedCalibration()


def run_scenario(
    config: CoCoAConfig,
    calibration: Optional[SharedCalibration] = None,
) -> TeamResult:
    """Build and run one scenario, reusing calibrations across calls."""
    cal = calibration if calibration is not None else _default_calibration
    return CoCoATeam(config, pdf_table=cal.table_for(config)).run()
