"""Scenario execution helpers.

The PDF-Table calibration is a property of the radio hardware, not of any
particular scenario, so parameter sweeps share one table through
:class:`SharedCalibration` — both for physical fidelity (the paper
calibrates once) and to keep sweeps fast.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

from repro.core.calibration import build_pdf_table
from repro.core.config import CoCoAConfig, LocalizationMode
from repro.core.pdf_table import PdfTable
from repro.core.team import CoCoATeam, TeamResult
from repro.sim.rng import RandomStreams
from repro.telemetry.collect import Telemetry


class SharedCalibration:
    """Caches PDF Tables keyed by (channel, receiver, seed, samples).

    The cache is a small LRU — long multi-seed sweeps touch one table per
    master seed, and an unbounded dict would grow with the sweep — and is
    lock-protected so sweep drivers may share one instance across threads.

    Args:
        max_entries: tables kept before the least recently used is
            evicted.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError(
                "max_entries must be >= 1, got %d" % max_entries
            )
        self.max_entries = max_entries
        self._tables: "OrderedDict[Tuple, PdfTable]" = OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._tables)

    def table_for(self, config: CoCoAConfig) -> Optional[PdfTable]:
        """Return (building if needed) the table for a scenario's hardware.

        Returns ``None`` for scenarios that never use RF localization.
        """
        if (
            config.localization_mode is LocalizationMode.ODOMETRY_ONLY
            or config.n_anchors == 0
        ):
            return None
        key = (
            config.path_loss,
            config.receiver,
            config.master_seed,
            config.calibration_samples,
        )
        with self._lock:
            table = self._tables.get(key)
            if table is not None:
                self._tables.move_to_end(key)
                return table
            result = build_pdf_table(
                config.path_loss,
                RandomStreams(config.master_seed).get("calibration"),
                n_samples=config.calibration_samples,
                receiver=config.receiver,
            )
            table = result.table
            self._tables[key] = table
            while len(self._tables) > self.max_entries:
                self._tables.popitem(last=False)
                self.evictions += 1
            return table

    def clear(self) -> None:
        """Drop every cached table (tests, worker-process resets)."""
        with self._lock:
            self._tables.clear()


_default_calibration = SharedCalibration()


def default_calibration() -> SharedCalibration:
    """The process-wide calibration cache :func:`run_scenario` falls
    back to; sweep worker processes clear it on startup."""
    return _default_calibration


def run_scenario(
    config: CoCoAConfig,
    calibration: Optional[SharedCalibration] = None,
    telemetry: Optional[Telemetry] = None,
) -> TeamResult:
    """Build and run one scenario, reusing calibrations across calls.

    Args:
        config: the scenario.
        calibration: optional shared calibration cache.
        telemetry: optional rich-instrumentation handle, passed through
            to the team (never part of the config — see
            :class:`~repro.core.team.CoCoATeam`).
    """
    cal = calibration if calibration is not None else _default_calibration
    return CoCoATeam(
        config, pdf_table=cal.table_for(config), telemetry=telemetry
    ).run()
