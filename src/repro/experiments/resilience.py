"""Resilience sweep: localization error versus fault intensity.

The robustness question the fault layer exists to answer: *how fast does
CoCoA degrade as the channel and sensors go bad, and how much of that
degradation do the estimator defenses buy back?*  :func:`run_resilience_sweep`
runs the same scenario at several fault intensities, once with every
defense off and once with the shipped defense profile on, and reports the
error curves side by side.

The fault plan at intensity 1.0 (:func:`example_fault_plan`) is a "bad
day in the field" composite: a jammer-like burst interferer, half the
fleet with drifting RSSI calibration, occasional corrupted beacon
payloads and transient receiver brownouts.  Intensity scales every knob
linearly (loss and corruption probabilities saturate at 1), and
intensity 0 is the exact baseline scenario — the zero-intensity,
defenses-off cell of this sweep is bit-identical to a plain
:func:`~repro.experiments.runner.run_scenario` of the base config.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.core.config import CoCoAConfig
from repro.experiments.metrics import summarize_errors
from repro.experiments.presets import headline_config
from repro.experiments.runner import SharedCalibration
from repro.faults.spec import (
    BrownoutSpec,
    BurstInterferenceSpec,
    DefenseConfig,
    FaultPlan,
    PayloadCorruptionSpec,
    RssiBiasSpec,
)
from repro.orchestrator.cache import ResultCache
from repro.orchestrator.executor import run_sweep
from repro.orchestrator.jobs import SweepJob
from repro.orchestrator.progress import ProgressListener

#: The defense profile the resilience experiment ships with: CRC-check
#: incoming beacons, reset degenerate posteriors, and quarantine anchors
#: whose fix residuals betray drifted calibration, with suspicion
#: decaying over six minutes so a recovered anchor is re-admitted.
#:
#: The beacon gate is deliberately *off* here: a per-beacon gate judges
#: single RSSI samples against the robot's own (possibly drifted)
#: estimate, and in every composite-fault profile we measured it
#: rejected more honest tails than faulty beacons.  It remains available
#: for deployments whose dominant fault is payload corruption with no
#: checksum support.
DEFENDED_DEFAULTS = DefenseConfig(
    crc_check=True,
    watchdog=True,
    anchor_expiry_s=360.0,
)


def example_fault_plan(intensity: float) -> FaultPlan:
    """The shipped fault composite, scaled by ``intensity``.

    Intensity 0 (or below) returns the no-op plan; intensity 1 is the
    profile described in the module docstring; values in between scale
    every rate, probability and magnitude linearly.
    """
    if intensity <= 0.0:
        return FaultPlan()
    return FaultPlan(
        burst=BurstInterferenceSpec(
            mean_good_s=45.0,
            mean_bad_s=6.0,
            bad_loss_prob=min(0.3 * intensity, 1.0),
            bad_noise_db=4.0 * intensity,
        ),
        rssi_bias=RssiBiasSpec(
            bias_std_db=3.0 * intensity,
            drift_db_per_min=1.0 * intensity,
            fraction_affected=0.5,
        ),
        corruption=PayloadCorruptionSpec(
            corrupt_prob=min(0.35 * intensity, 1.0)
        ),
        brownout=BrownoutSpec(
            rate_per_hour=10.0 * intensity, mean_duration_s=12.0
        ),
    )


def run_resilience_sweep(
    intensities: Sequence[float] = (0.0, 0.5, 1.0),
    base_config: Optional[CoCoAConfig] = None,
    duration_s: float = 600.0,
    master_seed: int = 1,
    calibration: Optional[SharedCalibration] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
    defenses: DefenseConfig = DEFENDED_DEFAULTS,
    telemetry_path: Optional[str] = None,
) -> Dict[float, Dict[str, Dict]]:
    """Error-versus-intensity curves, with and without defenses.

    Args:
        intensities: fault intensities to sweep (0 = clean baseline).
        base_config: scenario to perturb; defaults to the headline
            scenario at ``duration_s`` / ``master_seed``.
        duration_s: simulated seconds (only used for the default config).
        master_seed: master seed (only used for the default config).
        calibration: shared calibration cache for serial runs.
        jobs: worker processes (> 1 uses the process pool).
        cache: optional result cache; every cell is fingerprinted with
            its fault plan and defense profile, so cells are reusable
            across sweeps.
        progress: optional progress listener.
        defenses: the defense profile for the "defended" cells.
        telemetry_path: when set, executed cells run with rich telemetry
            and the per-job snapshots are written to this JSONL path.

    Returns:
        ``{intensity: {"undefended": cell, "defended": cell}}`` where each
        cell has the run's ``summary`` (:class:`ErrorSummary`), the raw
        ``times``/``mean_error`` series and the defense/fault counters
        (``beacons_gated``, ``beacons_quarantined``, ``watchdog_resets``,
        ``channel_stats``).
    """
    if base_config is None:
        base_config = headline_config(
            duration_s=duration_s, master_seed=master_seed
        )
    cal = calibration if calibration is not None else SharedCalibration()
    variants = (
        ("undefended", DefenseConfig()),
        ("defended", defenses),
    )
    sweep = [
        SweepJob(
            config=replace(
                base_config,
                faults=example_fault_plan(intensity),
                defenses=defense,
            ),
            name="resilience i=%g %s" % (intensity, label),
            key=(intensity, label),
            telemetry=telemetry_path is not None,
        )
        for intensity in intensities
        for label, defense in variants
    ]
    outcome = run_sweep(
        sweep, n_jobs=jobs, cache=cache, progress=progress, calibration=cal,
        telemetry_path=telemetry_path,
    )
    skip_s = min(
        1.1 * base_config.beacon_period_s + 5.0, base_config.duration_s / 2
    )
    out: Dict[float, Dict[str, Dict]] = {i: {} for i in intensities}
    for job, result in zip(sweep, outcome.results):
        intensity, label = job.key
        out[intensity][label] = {
            "times": result.times,
            "mean_error": result.mean_error_series(),
            "summary": summarize_errors(result.errors, skip_first_s=skip_s),
            "beacons_gated": result.beacons_gated,
            "beacons_quarantined": result.beacons_quarantined,
            "watchdog_resets": result.watchdog_resets,
            "channel_stats": result.channel_stats,
        }
    return out
