"""Declarative sweep jobs and the canonical scenario content hash.

A :class:`SweepJob` names one independent scenario run.  Its identity for
caching purposes is :func:`config_digest`: a SHA-256 over a *canonical*
serialization of the :class:`~repro.core.config.CoCoAConfig` — nested
dataclasses flattened field by field in sorted order, enums reduced to
their values, floats rendered with ``repr`` so the digest is stable
across processes and Python sessions (unlike ``hash()``).

:data:`CODE_VERSION` is the code-version salt.  The on-disk cache
partitions entries by it, so bumping the constant after any change that
alters simulation output invalidates every stored result at once.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence

from repro.core.config import CoCoAConfig

#: Bump whenever a change anywhere in the simulator alters the metrics a
#: given config produces; cached results from older versions are then
#: ignored (they live under a different cache partition).
CODE_VERSION = "2026.08.2"


def _canonical(value: object) -> object:
    """Reduce ``value`` to JSON-serializable primitives, deterministically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        fields["__class__"] = type(value).__name__
        return fields
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, float):
        # repr round-trips doubles exactly; json.dumps would too, but being
        # explicit keeps the digest independent of the JSON float formatter.
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise TypeError(
        "cannot canonicalize %r of type %s for hashing"
        % (value, type(value).__name__)
    )


def config_digest(config: CoCoAConfig) -> str:
    """Canonical, process-stable content hash of a scenario config."""
    payload = json.dumps(
        _canonical(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SweepJob:
    """One independent scenario run inside a sweep.

    Attributes:
        config: the complete scenario to run.
        name: human-readable label used in progress output and the cache
            manifest (e.g. ``"fig9 T=100 coord"``).
        key: consumer-side key (seed, beacon period, (v_max, mode) tuple,
            ...) so sweep callers can reshape the flat result list back
            into their own structures.
        telemetry: run the job with rich telemetry (registry + span
            tracer) enabled.  Deliberately excluded from the fingerprint:
            telemetry never changes simulation output, so toggling it must
            not invalidate cached results.  Consequence: a job answered
            from cache carries whatever snapshot the original execution
            stored — rich keys only if *that* run had telemetry enabled.
    """

    config: CoCoAConfig
    name: str = ""
    key: object = None
    telemetry: bool = False

    @property
    def fingerprint(self) -> str:
        """Content hash identifying this job's scenario."""
        return config_digest(self.config)


def seed_jobs(
    config: CoCoAConfig,
    seeds: Sequence[int],
    name_format: str = "seed={seed}",
    telemetry: bool = False,
) -> List[SweepJob]:
    """Jobs re-running one scenario under several master seeds."""
    return [
        SweepJob(
            config=replace(config, master_seed=seed),
            name=name_format.format(seed=seed),
            key=seed,
            telemetry=telemetry,
        )
        for seed in seeds
    ]


def grid_jobs(
    config: CoCoAConfig,
    field: str,
    values: Iterable[object],
    name_format: Optional[str] = None,
    telemetry: bool = False,
) -> List[SweepJob]:
    """Jobs varying one config field over ``values``."""
    if name_format is None:
        name_format = field + "={value}"
    return [
        SweepJob(
            config=replace(config, **{field: value}),
            name=name_format.format(value=value),
            key=value,
            telemetry=telemetry,
        )
        for value in values
    ]
