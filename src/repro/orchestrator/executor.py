"""Sweep execution: serial and process-pool backends behind one entry point.

:func:`run_sweep` takes a list of :class:`~repro.orchestrator.jobs.SweepJob`
and returns their :class:`~repro.core.team.TeamResult` in *job order* —
regardless of the order the backend completes them in — plus a
:class:`~repro.orchestrator.progress.SweepReport` with timing and cache
accounting.  Cache lookups happen in the parent before anything is
submitted, so a fully warm sweep never touches a worker at all.

Parallel correctness rests on two properties of the simulator:

- every random stream derives from the job's own ``master_seed``, so a
  scenario's result is a pure function of its config;
- workers rebuild their calibration tables from scratch (the pool
  initializer clears the per-process :class:`SharedCalibration`), so no
  state flows between jobs except through the explicit config.

Together these make parallel output bit-identical to serial output,
which the regression suite enforces.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.team import TeamResult
from repro.experiments.runner import (
    SharedCalibration,
    default_calibration,
    run_scenario,
)
from repro.orchestrator.cache import ResultCache
from repro.orchestrator.jobs import SweepJob
from repro.orchestrator.progress import (
    JobRecord,
    ProgressListener,
    SweepReport,
)

IndexedJob = Tuple[int, SweepJob]


def _timed_run(job: SweepJob) -> Tuple[TeamResult, float]:
    """Run one job and measure its wall time (top level: must pickle)."""
    start = time.perf_counter()
    result = run_scenario(job.config)
    return result, time.perf_counter() - start


def _worker_init() -> None:
    """Process-pool initializer: start each worker with fresh calibration.

    Under the ``fork`` start method workers inherit the parent's cached
    PDF tables; clearing guarantees every worker rebuilds from its jobs'
    seeds alone, keeping memory bounded and behaviour identical across
    start methods.
    """
    default_calibration().clear()


class SerialBackend:
    """In-process execution, one job at a time, in job order.

    Args:
        calibration: optional shared calibration cache, reused across the
            sweep's jobs exactly like the old hand-rolled loops did.
    """

    n_workers = 1

    def __init__(self, calibration: Optional[SharedCalibration] = None) -> None:
        self.calibration = calibration

    def execute(
        self, pending: Sequence[IndexedJob]
    ) -> Iterator[Tuple[int, TeamResult, float]]:
        for index, job in pending:
            start = time.perf_counter()
            result = run_scenario(job.config, calibration=self.calibration)
            yield index, result, time.perf_counter() - start


class ProcessPoolBackend:
    """Fan jobs out over a ``ProcessPoolExecutor``.

    Results are yielded as they complete (the caller restores job order);
    each worker process rebuilds its own calibration tables.

    Args:
        n_workers: worker process count (>= 1).
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1, got %d" % n_workers)
        self.n_workers = n_workers

    def execute(
        self, pending: Sequence[IndexedJob]
    ) -> Iterator[Tuple[int, TeamResult, float]]:
        if not pending:
            return
        with ProcessPoolExecutor(
            max_workers=min(self.n_workers, len(pending)),
            initializer=_worker_init,
        ) as pool:
            futures = {
                pool.submit(_timed_run, job): index for index, job in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    result, wall_s = future.result()
                    yield futures[future], result, wall_s


@dataclass
class SweepOutcome:
    """Everything one sweep produced.

    Attributes:
        jobs: the submitted jobs, in submission order.
        results: one :class:`TeamResult` per job, in the same order.
        report: timing and cache accounting.
    """

    jobs: List[SweepJob]
    results: List[TeamResult]
    report: SweepReport = field(default_factory=SweepReport)

    def by_key(self) -> Dict[object, TeamResult]:
        """Results keyed by each job's ``key`` (jobs must have unique keys)."""
        out: Dict[object, TeamResult] = {}
        for job, result in zip(self.jobs, self.results):
            if job.key in out:
                raise ValueError("duplicate job key %r" % (job.key,))
            out[job.key] = result
        return out


def run_sweep(
    jobs: Sequence[SweepJob],
    n_jobs: int = 1,
    backend: Optional[object] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
    calibration: Optional[SharedCalibration] = None,
) -> SweepOutcome:
    """Execute a sweep, returning results in deterministic job order.

    Args:
        jobs: the scenario runs to perform.
        n_jobs: worker count; > 1 selects the process-pool backend.
            Ignored when ``backend`` is given.
        backend: explicit backend instance (anything with ``n_workers``
            and ``execute(pending)``).
        cache: optional result cache consulted before execution and
            updated after; hits skip simulation entirely.
        progress: optional listener for per-job progress and ETA.
        calibration: shared calibration for the serial backend (worker
            processes always rebuild their own).
    """
    jobs = list(jobs)
    if backend is None:
        backend = (
            ProcessPoolBackend(n_jobs)
            if n_jobs > 1
            else SerialBackend(calibration=calibration)
        )
    listener = progress if progress is not None else ProgressListener()
    n_workers = getattr(backend, "n_workers", 1)
    listener.sweep_started(len(jobs), n_workers)

    sweep_start = time.perf_counter()
    results: List[Optional[TeamResult]] = [None] * len(jobs)
    records: List[Optional[JobRecord]] = [None] * len(jobs)
    hits = 0
    done = 0
    executed_walls: List[float] = []

    def finish(index: int, record: JobRecord) -> None:
        nonlocal done
        done += 1
        records[index] = record
        listener.job_finished(record, done, len(jobs), eta())

    def eta() -> Optional[float]:
        left = len(jobs) - done
        if left == 0:
            return 0.0
        if not executed_walls:
            return None
        mean = sum(executed_walls) / len(executed_walls)
        return mean * left / max(1, n_workers)

    pending: List[IndexedJob] = []
    for index, job in enumerate(jobs):
        cached = cache.get(job.fingerprint) if cache is not None else None
        if cached is not None:
            results[index] = cached
            hits += 1
            finish(index, JobRecord(name=job.name, wall_s=0.0, cached=True))
        else:
            pending.append((index, job))

    for index, result, wall_s in backend.execute(pending):
        job = jobs[index]
        results[index] = result
        if cache is not None:
            cache.put(job.fingerprint, result, job_name=job.name,
                      wall_s=wall_s)
        executed_walls.append(wall_s)
        finish(index, JobRecord(name=job.name, wall_s=wall_s, cached=False))

    report = SweepReport(
        records=[r for r in records if r is not None],
        total_wall_s=time.perf_counter() - sweep_start,
        cache_hits=hits,
        cache_misses=len(pending),
        n_workers=n_workers,
    )
    listener.sweep_finished(report)
    return SweepOutcome(jobs=jobs, results=[r for r in results], report=report)
