"""Sweep execution: serial and process-pool backends behind one entry point.

:func:`run_sweep` takes a list of :class:`~repro.orchestrator.jobs.SweepJob`
and returns their :class:`~repro.core.team.TeamResult` in *job order* —
regardless of the order the backend completes them in — plus a
:class:`~repro.orchestrator.progress.SweepReport` with timing and cache
accounting.  Cache lookups happen in the parent before anything is
submitted, so a fully warm sweep never touches a worker at all.

Parallel correctness rests on two properties of the simulator:

- every random stream derives from the job's own ``master_seed``, so a
  scenario's result is a pure function of its config;
- workers rebuild their calibration tables from scratch (the pool
  initializer clears the per-process :class:`SharedCalibration`), so no
  state flows between jobs except through the explicit config.

Together these make parallel output bit-identical to serial output,
which the regression suite enforces.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.team import TeamResult
from repro.experiments.runner import (
    SharedCalibration,
    default_calibration,
    run_scenario,
)
from repro.orchestrator.cache import ResultCache
from repro.orchestrator.jobs import CODE_VERSION, SweepJob
from repro.orchestrator.progress import (
    JobRecord,
    ProgressListener,
    SweepReport,
)
from repro.telemetry.collect import Telemetry
from repro.telemetry.export import write_jsonl
from repro.telemetry.registry import DURATION_EDGES_S, Histogram

IndexedJob = Tuple[int, SweepJob]


class SweepExecutionError(RuntimeError):
    """A job kept failing after every allowed attempt."""


def _job_telemetry(job: SweepJob) -> Optional[Telemetry]:
    """The job's rich-instrumentation handle, if it asked for one."""
    return Telemetry.enabled() if getattr(job, "telemetry", False) else None


def _record_cpu(result: TeamResult, cpu_s: float) -> None:
    """Stash worker CPU time in the result's telemetry snapshot.

    The backend tuple shape ``(index, result, wall_s, attempts)`` is
    pinned by tests and external backends, so CPU time rides inside the
    result instead of widening the protocol.
    """
    telemetry = getattr(result, "telemetry", None)
    if telemetry is not None:
        telemetry.metrics["orchestrator_job_cpu_s"] = cpu_s


def _timed_run(job: SweepJob) -> Tuple[TeamResult, float]:
    """Run one job and measure its wall time (top level: must pickle)."""
    start = time.perf_counter()
    cpu_start = time.process_time()
    result = run_scenario(job.config, telemetry=_job_telemetry(job))
    _record_cpu(result, time.process_time() - cpu_start)
    return result, time.perf_counter() - start


def _worker_init() -> None:
    """Process-pool initializer: start each worker with fresh calibration.

    Under the ``fork`` start method workers inherit the parent's cached
    PDF tables; clearing guarantees every worker rebuilds from its jobs'
    seeds alone, keeping memory bounded and behaviour identical across
    start methods.
    """
    default_calibration().clear()


class SerialBackend:
    """In-process execution, one job at a time, in job order.

    Args:
        calibration: optional shared calibration cache, reused across the
            sweep's jobs exactly like the old hand-rolled loops did.
    """

    n_workers = 1
    #: Optional ``callable(index)`` invoked when a job starts executing;
    #: the sweep driver installs one for in-flight-aware ETAs.
    on_start: Optional[Callable[[int], None]] = None

    def __init__(self, calibration: Optional[SharedCalibration] = None) -> None:
        self.calibration = calibration

    def execute(
        self, pending: Sequence[IndexedJob]
    ) -> Iterator[Tuple[int, TeamResult, float, int]]:
        for index, job in pending:
            if self.on_start is not None:
                self.on_start(index)
            start = time.perf_counter()
            cpu_start = time.process_time()
            result = run_scenario(
                job.config,
                calibration=self.calibration,
                telemetry=_job_telemetry(job),
            )
            _record_cpu(result, time.process_time() - cpu_start)
            yield index, result, time.perf_counter() - start, 1


class ProcessPoolBackend:
    """Fan jobs out over a ``ProcessPoolExecutor``, surviving worker
    failures.

    Results are yielded as they complete (the caller restores job order);
    each worker process rebuilds its own calibration tables.  Three
    hardening layers wrap the happy path:

    - **retry with backoff**: a job whose attempt raises is resubmitted
      up to ``max_attempts`` times, sleeping an exponentially growing,
      jittered interval between attempts (the jitter draws from a
      dedicated seeded PRNG, so scheduling noise never touches any
      simulation stream);
    - **per-job timeout**: an attempt running longer than ``timeout_s``
      is charged a failure and its pool is torn down (terminating the
      stuck worker) and respawned;
    - **broken-pool recovery**: when a worker dies (OOM kill, segfault,
      interpreter crash) the ``BrokenProcessPool`` is discarded, the
      attempt that died is charged a failure, and every *other* in-flight
      job is resubmitted to a fresh pool without being charged.

    A job that fails ``max_attempts`` times raises
    :class:`SweepExecutionError` — a sweep never silently drops a point.

    Args:
        n_workers: worker process count (>= 1).
        timeout_s: per-attempt wall-clock limit (``None`` = unlimited).
        max_attempts: attempts per job before the sweep aborts.
        backoff_base_s: first retry delay; doubles per failure.
        backoff_max_s: retry delay ceiling.
        backoff_seed: seed of the jitter PRNG (kept deterministic so
            retried sweeps behave reproducibly under test).
        task: the callable shipped to workers; injectable for tests.
    """

    #: Optional ``callable(index)`` invoked at submit time (see
    #: :class:`SerialBackend`).  Retried submissions fire it again.
    on_start: Optional[Callable[[int], None]] = None

    def __init__(
        self,
        n_workers: int,
        timeout_s: Optional[float] = None,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        backoff_seed: int = 0,
        task: Optional[Callable] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1, got %d" % n_workers)
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive, got %r" % timeout_s)
        if max_attempts < 1:
            raise ValueError(
                "max_attempts must be >= 1, got %d" % max_attempts
            )
        self.n_workers = n_workers
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.backoff_seed = backoff_seed
        self._task = task if task is not None else _timed_run

    def _new_pool(self, n_pending: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(self.n_workers, n_pending),
            initializer=_worker_init,
        )

    def _backoff_s(self, failures: int, rng: random.Random) -> float:
        delay = self.backoff_base_s * (2.0 ** max(failures - 1, 0))
        return min(delay, self.backoff_max_s) * (0.5 + rng.random())

    @staticmethod
    def _terminate(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down hard, killing any stuck workers."""
        processes = list(getattr(pool, "_processes", {}).values())
        for process in processes:
            try:
                process.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def execute(
        self, pending: Sequence[IndexedJob]
    ) -> Iterator[Tuple[int, TeamResult, float, int]]:
        if not pending:
            return
        jobs = dict(pending)
        queue = deque(index for index, _ in pending)
        attempts = {index: 0 for index, _ in pending}
        failures = {index: 0 for index, _ in pending}
        # repro: noqa[REP001] seeded per-sweep retry jitter, not sim-facing
        rng = random.Random(self.backoff_seed)
        pool = self._new_pool(len(pending))
        futures: Dict[object, int] = {}
        deadlines: Dict[object, float] = {}

        def fail(index: int, cause: Optional[BaseException]) -> None:
            """Charge one failure; abort the sweep past the budget."""
            failures[index] += 1
            if failures[index] >= self.max_attempts:
                raise SweepExecutionError(
                    "job %r failed %d time%s%s"
                    % (
                        jobs[index].name,
                        failures[index],
                        "" if failures[index] == 1 else "s",
                        ": %s" % cause if cause is not None else "",
                    )
                ) from cause
            time.sleep(self._backoff_s(failures[index], rng))
            queue.append(index)

        try:
            while queue or futures:
                while queue:
                    index = queue.popleft()
                    attempts[index] += 1
                    if self.on_start is not None:
                        self.on_start(index)
                    future = pool.submit(self._task, jobs[index])
                    futures[future] = index
                    if self.timeout_s is not None:
                        deadlines[future] = time.monotonic() + self.timeout_s

                wait_s = None
                if deadlines:
                    wait_s = max(
                        min(deadlines.values()) - time.monotonic(), 0.0
                    )
                done, _ = wait(
                    set(futures), timeout=wait_s, return_when=FIRST_COMPLETED
                )

                pool_broken = False
                for future in done:
                    index = futures.pop(future)
                    deadlines.pop(future, None)
                    try:
                        result, wall_s = future.result()
                    except BrokenProcessPool as error:
                        # The attempt that rode the dying worker is
                        # charged; innocent in-flight jobs are not.
                        pool_broken = True
                        fail(index, error)
                    except Exception as error:
                        fail(index, error)
                    else:
                        yield index, result, wall_s, attempts[index]

                now = time.monotonic()
                expired = [
                    future
                    for future, deadline in deadlines.items()
                    if deadline <= now and future in futures
                ]
                if expired or pool_broken:
                    # Either path invalidates the pool: stuck workers
                    # must be killed, dead pools cannot take new work.
                    # Requeue the in-flight survivors uncharged.
                    for future in expired:
                        fail(futures[future], None)
                    for future, index in list(futures.items()):
                        if index not in queue:
                            queue.append(index)
                    futures.clear()
                    deadlines.clear()
                    self._terminate(pool)
                    pool = self._new_pool(max(len(queue), 1))
        finally:
            self._terminate(pool)


@dataclass
class SweepOutcome:
    """Everything one sweep produced.

    Attributes:
        jobs: the submitted jobs, in submission order.
        results: one :class:`TeamResult` per job, in the same order.
        report: timing and cache accounting.
    """

    jobs: List[SweepJob]
    results: List[TeamResult]
    report: SweepReport = field(default_factory=SweepReport)

    def by_key(self) -> Dict[object, TeamResult]:
        """Results keyed by each job's ``key`` (jobs must have unique keys)."""
        out: Dict[object, TeamResult] = {}
        for job, result in zip(self.jobs, self.results):
            if job.key in out:
                raise ValueError("duplicate job key %r" % (job.key,))
            out[job.key] = result
        return out


def run_sweep(
    jobs: Sequence[SweepJob],
    n_jobs: int = 1,
    backend: Optional[object] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
    calibration: Optional[SharedCalibration] = None,
    timeout_s: Optional[float] = None,
    max_attempts: int = 3,
    telemetry_path: Optional[str] = None,
) -> SweepOutcome:
    """Execute a sweep, returning results in deterministic job order.

    Args:
        jobs: the scenario runs to perform.
        n_jobs: worker count; > 1 selects the process-pool backend.
            Ignored when ``backend`` is given.
        backend: explicit backend instance (anything with ``n_workers``
            and ``execute(pending)``).
        cache: optional result cache consulted before execution and
            updated after; hits skip simulation entirely.  A sweep-level
            summary line (job counts, hit rate, wall quantiles) is also
            appended to the cache's ``sweeps.jsonl``.
        progress: optional listener for per-job progress and ETA.
        calibration: shared calibration for the serial backend (worker
            processes always rebuild their own).
        timeout_s: per-attempt wall-clock limit for pool workers
            (ignored for the serial backend and explicit ``backend``).
        max_attempts: attempts per job before the sweep aborts (pool
            backend only).
        telemetry_path: if given, write one JSONL record per job (its
            telemetry snapshot, wall/CPU time, cache status) plus a final
            sweep-summary record to this path.
    """
    jobs = list(jobs)
    if backend is None:
        backend = (
            ProcessPoolBackend(
                n_jobs, timeout_s=timeout_s, max_attempts=max_attempts
            )
            if n_jobs > 1
            else SerialBackend(calibration=calibration)
        )
    listener = progress if progress is not None else ProgressListener()
    n_workers = getattr(backend, "n_workers", 1)
    listener.sweep_started(len(jobs), n_workers)

    sweep_start = time.perf_counter()
    results: List[Optional[TeamResult]] = [None] * len(jobs)
    records: List[Optional[JobRecord]] = [None] * len(jobs)
    hits = 0
    done = 0
    wall_hist = Histogram("job_wall_s", DURATION_EDGES_S)
    #: index -> perf_counter at submit, for in-flight-aware ETAs.
    in_flight: Dict[int, float] = {}

    def job_started(index: int) -> None:
        in_flight[index] = time.perf_counter()
        listener.job_started(index, jobs[index].name)

    # Only backends that declare the hook get it; stub/test backends
    # without an ``on_start`` attribute are left untouched.
    if hasattr(backend, "on_start"):
        backend.on_start = job_started

    def finish(index: int, record: JobRecord) -> None:
        nonlocal done
        done += 1
        records[index] = record
        listener.job_finished(record, done, len(jobs), eta())

    def eta() -> Optional[float]:
        """Remaining-work estimate that credits in-flight progress.

        A job already running for ``e`` seconds is expected to need
        ``max(mean - e, 0)`` more, not the full mean — without this, the
        ETA jumps up every time a batch of jobs is submitted and decays
        in steps rather than smoothly.
        """
        left = len(jobs) - done
        if left == 0:
            return 0.0
        if wall_hist.count == 0:
            return None
        mean = wall_hist.mean
        now = time.perf_counter()
        running = [t0 for idx, t0 in in_flight.items() if results[idx] is None]
        inflight_s = sum(max(mean - (now - t0), 0.0) for t0 in running)
        queued = left - len(running)
        return (max(queued, 0) * mean + inflight_s) / max(1, n_workers)

    pending: List[IndexedJob] = []
    for index, job in enumerate(jobs):
        cached = cache.get(job.fingerprint) if cache is not None else None
        if cached is not None:
            results[index] = cached
            hits += 1
            finish(
                index,
                JobRecord(name=job.name, wall_s=0.0, cached=True, attempts=0),
            )
        else:
            pending.append((index, job))

    for index, result, wall_s, attempts in backend.execute(pending):
        job = jobs[index]
        results[index] = result
        in_flight.pop(index, None)
        if cache is not None:
            cache.put(job.fingerprint, result, job_name=job.name,
                      wall_s=wall_s)
        wall_hist.observe(wall_s)
        snapshot = getattr(result, "telemetry", None)
        cpu_s = snapshot.get("orchestrator_job_cpu_s") if snapshot else 0.0
        finish(
            index,
            JobRecord(
                name=job.name, wall_s=wall_s, cached=False,
                attempts=attempts, cpu_s=cpu_s,
            ),
        )

    report = SweepReport(
        records=[r for r in records if r is not None],
        total_wall_s=time.perf_counter() - sweep_start,
        cache_hits=hits,
        cache_misses=len(pending),
        n_workers=n_workers,
        job_wall_p50_s=wall_hist.quantile(0.5),
        job_wall_p90_s=wall_hist.quantile(0.9),
    )
    listener.sweep_finished(report)

    sweep_record = {
        "record": "sweep",
        "code_version": CODE_VERSION,
        "jobs": len(jobs),
        "cache_hits": hits,
        "cache_misses": len(pending),
        "retried": report.n_retried,
        "wall_s": round(report.total_wall_s, 3),
        "n_workers": n_workers,
        "job_wall_p50_s": round(report.job_wall_p50_s, 3),
        "job_wall_p90_s": round(report.job_wall_p90_s, 3),
    }
    if cache is not None:
        cache.record_sweep(sweep_record)
    if telemetry_path is not None:
        _write_sweep_telemetry(
            telemetry_path, jobs, results, records, sweep_record
        )
    return SweepOutcome(jobs=jobs, results=[r for r in results], report=report)


def _write_sweep_telemetry(
    path: str,
    jobs: Sequence[SweepJob],
    results: Sequence[object],
    records: Sequence[Optional[JobRecord]],
    sweep_record: dict,
) -> None:
    """Dump per-job snapshots plus the sweep summary as JSONL."""
    lines: List[dict] = []
    for job, result, record in zip(jobs, results, records):
        entry = {
            "record": "job",
            "job": job.name,
            "fingerprint": job.fingerprint,
            "cached": record.cached if record is not None else False,
            "wall_s": round(record.wall_s, 3) if record is not None else 0.0,
            "attempts": record.attempts if record is not None else 0,
        }
        snapshot = getattr(result, "telemetry", None)
        if snapshot is not None:
            entry.update(snapshot.as_record())
        lines.append(entry)
    lines.append(sweep_record)
    write_jsonl(path, lines)
