"""Timing, progress and summary reporting for sweeps.

:class:`SweepReport` is the quantitative record of one
:func:`~repro.orchestrator.executor.run_sweep` call: per-job wall-clock
times, which jobs were answered from cache, and the sweep's total wall
time.  :class:`ProgressListener` is the callback interface the executor
drives while jobs run; :class:`ProgressPrinter` is the stock
implementation that prints one line per finished job with a running ETA.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import List, Optional, TextIO

from repro.telemetry.registry import DURATION_EDGES_S, Histogram


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one job.

    Attributes:
        name: the job's label.
        wall_s: execution wall-clock seconds (0.0 for cache hits).
        cached: True if the result came from the cache.
        attempts: times the job was submitted to a worker before the
            result landed (0 for cache hits, 1 for a clean run, more
            after retries, timeouts or pool crashes).
        cpu_s: CPU seconds the job burned in its worker (0.0 for cache
            hits, or when the result carries no telemetry snapshot).
    """

    name: str
    wall_s: float
    cached: bool
    attempts: int = 1
    cpu_s: float = 0.0


@dataclass
class SweepReport:
    """Aggregate record of one sweep execution (jobs in submission order)."""

    records: List[JobRecord] = field(default_factory=list)
    total_wall_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    n_workers: int = 1
    #: p50/p90 of executed-job wall times (0.0 until any job executed).
    job_wall_p50_s: float = 0.0
    job_wall_p90_s: float = 0.0

    @property
    def n_jobs(self) -> int:
        return len(self.records)

    @property
    def n_executed(self) -> int:
        """Jobs that actually ran a simulation (cache misses)."""
        return sum(1 for r in self.records if not r.cached)

    @property
    def n_retried(self) -> int:
        """Jobs that needed more than one submission."""
        return sum(1 for r in self.records if r.attempts > 1)

    @property
    def executed_wall_s(self) -> float:
        """Summed per-job wall time (CPU-side cost, ignores overlap)."""
        return sum(r.wall_s for r in self.records if not r.cached)

    @property
    def speedup(self) -> float:
        """Summed job time over sweep wall time (> 1 means overlap won)."""
        if self.total_wall_s <= 0.0:
            return 1.0
        return self.executed_wall_s / self.total_wall_s

    def format_summary(self) -> str:
        """One-line human summary for CLI output and logs."""
        parts = [
            "%d jobs" % self.n_jobs,
            "%d executed" % self.n_executed,
            "%d cached" % self.cache_hits,
            "wall %.1fs" % self.total_wall_s,
        ]
        if self.n_retried:
            parts.append("%d retried" % self.n_retried)
        if self.n_workers > 1:
            parts.append(
                "%d workers (%.1fx speedup)" % (self.n_workers, self.speedup)
            )
        return ", ".join(parts)


class ProgressListener:
    """Callback interface driven by the executor; all methods optional."""

    def sweep_started(self, n_jobs: int, n_workers: int) -> None:
        """Called once before any job runs."""

    def job_started(self, index: int, name: str) -> None:
        """Called when a job is handed to a worker (never for cache hits).

        Backends without submit-time hooks may not drive this; listeners
        must tolerate never hearing it.
        """

    def job_finished(
        self,
        record: JobRecord,
        done: int,
        total: int,
        eta_s: Optional[float],
    ) -> None:
        """Called after each job (executed or cache hit) completes.

        Args:
            record: the finished job's outcome.
            done: jobs completed so far, including this one.
            total: total jobs in the sweep.
            eta_s: estimated seconds until the sweep finishes, or ``None``
                before any timing signal exists.
        """

    def sweep_finished(self, report: SweepReport) -> None:
        """Called once after the last job."""


class ProgressPrinter(ProgressListener):
    """Prints one status line per finished job, with a running ETA.

    Executed wall times feed a fixed-bucket telemetry
    :class:`~repro.telemetry.registry.Histogram`; once two jobs have
    executed, each line carries the running p50/p90 so a long sweep's
    spread (stragglers, bimodal configs) is visible while it runs.
    """

    def __init__(self, out: Optional[TextIO] = None) -> None:
        self.out = out if out is not None else sys.stderr
        self._walls = Histogram("job_wall_s", DURATION_EDGES_S)

    def sweep_started(self, n_jobs: int, n_workers: int) -> None:
        print(
            "sweep: %d jobs on %d worker%s"
            % (n_jobs, n_workers, "" if n_workers == 1 else "s"),
            file=self.out,
            flush=True,
        )

    def job_finished(self, record, done, total, eta_s) -> None:
        status = "cached" if record.cached else "%.1fs" % record.wall_s
        if not record.cached:
            self._walls.observe(record.wall_s)
        quantiles = ""
        if self._walls.count >= 2:
            quantiles = "  p50 %.1fs p90 %.1fs" % (
                self._walls.quantile(0.5),
                self._walls.quantile(0.9),
            )
        eta = "" if eta_s is None else "  eta %.0fs" % eta_s
        print(
            "  [%*d/%d] %-32s %s%s%s"
            % (len(str(total)), done, total, record.name, status, quantiles,
               eta),
            file=self.out,
            flush=True,
        )

    def sweep_finished(self, report: SweepReport) -> None:
        print("sweep done: %s" % report.format_summary(), file=self.out,
              flush=True)
