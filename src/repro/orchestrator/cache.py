"""Content-addressed on-disk store for finished scenario runs.

Layout (under the cache root, ``.repro_cache/`` by default)::

    <root>/<salt>/<fp[:2]>/<fingerprint>.pkl   pickled TeamResult
    <root>/<salt>/manifest.jsonl               one JSON line per store

``salt`` is the code-version salt (:data:`~repro.orchestrator.jobs.CODE_VERSION`);
changing it orphans every older entry, which is exactly the invalidation
we want after a change that alters simulation output.  The manifest is an
append-only human-readable index (fingerprint, job name, wall seconds) so
``ls``-ing the cache is never required to know what is in it.

The cache is strictly best-effort: a corrupt pickle, an unreadable
directory or an unwritable filesystem downgrades to a miss (the sweep
recomputes) and bumps :attr:`CacheStats.errors` — it never raises out of
:meth:`ResultCache.get` or :meth:`ResultCache.put`.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.team import TeamResult
from repro.orchestrator.jobs import CODE_VERSION

DEFAULT_CACHE_DIR = ".repro_cache"


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance.

    Attributes:
        hits: lookups answered from disk.
        misses: lookups that found no entry.
        stores: results written.
        errors: I/O or deserialization failures silently downgraded to
            misses / dropped stores.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ManifestEntry:
    """One line of the cache manifest."""

    fingerprint: str
    job: str
    wall_s: float
    written_at: float
    extra: dict = field(default_factory=dict)


class ResultCache:
    """Content-addressed store mapping config fingerprints to results.

    Args:
        root: cache directory (created lazily on first store).
        salt: code-version salt partitioning the entries; defaults to
            :data:`~repro.orchestrator.jobs.CODE_VERSION`.
    """

    def __init__(
        self, root: str = DEFAULT_CACHE_DIR, salt: str = CODE_VERSION
    ) -> None:
        self.root = root
        self.salt = salt
        self.stats = CacheStats()

    # -- paths ---------------------------------------------------------------

    @property
    def _partition(self) -> str:
        return os.path.join(self.root, self.salt)

    def path_for(self, fingerprint: str) -> str:
        """On-disk path of a fingerprint's entry (existing or not)."""
        return os.path.join(
            self._partition, fingerprint[:2], fingerprint + ".pkl"
        )

    @property
    def manifest_path(self) -> str:
        return os.path.join(self._partition, "manifest.jsonl")

    @property
    def sweeps_path(self) -> str:
        """Append-only log of sweep-level summaries (``repro report``
        reads it for orchestrator-side numbers like the cache hit rate)."""
        return os.path.join(self._partition, "sweeps.jsonl")

    # -- lookup / store ------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[TeamResult]:
        """Return the stored result, or ``None`` on miss or any error."""
        return self.get_payload(fingerprint, TeamResult)

    def get_payload(self, fingerprint: str, expected_type: type):
        """Generic typed lookup: the stored object, or ``None``.

        The type check is part of the contract — a fingerprint scheme
        that stores :class:`~repro.core.pdf_table.PdfTable` payloads
        (the serve warm-start store) shares the cache with
        :class:`~repro.core.team.TeamResult` entries, and a prefix
        collision must read as a miss, never as a wrongly-typed hit.
        """
        path = self.path_for(fingerprint)
        if not os.path.exists(path):
            self.stats.misses += 1
            return None
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except Exception:
            # Corrupt or unreadable entry: recompute rather than crash.
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        if not isinstance(result, expected_type):
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(
        self,
        fingerprint: str,
        result: TeamResult,
        job_name: str = "",
        wall_s: float = 0.0,
    ) -> bool:
        """Store ``result``; returns False (and keeps going) on failure."""
        return self.put_payload(fingerprint, result, job_name, wall_s)

    def put_payload(
        self,
        fingerprint: str,
        payload,
        job_name: str = "",
        wall_s: float = 0.0,
    ) -> bool:
        """Store any picklable payload under ``fingerprint``."""
        path = self.path_for(fingerprint)
        tmp = path + ".tmp.%d" % os.getpid()
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic: readers never see partial files
        except Exception:
            self.stats.errors += 1
            try:
                if os.path.exists(tmp):
                    os.remove(tmp)
            except OSError:
                pass
            return False
        self.stats.stores += 1
        self._append_manifest(fingerprint, job_name, wall_s)
        return True

    def _append_manifest(
        self, fingerprint: str, job_name: str, wall_s: float
    ) -> None:
        line = json.dumps(
            {
                "fingerprint": fingerprint,
                "job": job_name,
                "wall_s": round(wall_s, 3),
                # repro: noqa[REP002] manifest metadata, not a result
                "written_at": time.time(),
            },
            sort_keys=True,
        )
        try:
            with open(self.manifest_path, "a") as handle:
                handle.write(line + "\n")
        except Exception:
            self.stats.errors += 1

    def record_sweep(self, record: dict) -> bool:
        """Append one sweep summary to ``sweeps.jsonl`` (best effort)."""
        try:
            os.makedirs(self._partition, exist_ok=True)
            line = json.dumps(record, sort_keys=True, default=str)
            with open(self.sweeps_path, "a") as handle:
                handle.write(line + "\n")
        except Exception:
            self.stats.errors += 1
            return False
        return True

    def sweep_records(self) -> List[dict]:
        """Parse the sweep log, newest last (skipping unreadable lines)."""
        out: List[dict] = []
        try:
            with open(self.sweeps_path) as handle:
                for raw in handle:
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        data = json.loads(raw)
                    except ValueError:
                        continue
                    if isinstance(data, dict):
                        out.append(data)
        except OSError:
            return out
        return out

    def remove(self, fingerprint: str) -> bool:
        """Delete one entry (best effort); True if a file was removed.

        Used by latest-wins payload schemes (serve checkpoints) whose
        entries stop being meaningful — e.g. a tenant said ``bye`` and
        its checkpoint must not re-hydrate a future session.
        """
        try:
            os.remove(self.path_for(fingerprint))
        except FileNotFoundError:
            return False
        except OSError:
            self.stats.errors += 1
            return False
        return True

    # -- maintenance ---------------------------------------------------------

    def entries(self) -> List[ManifestEntry]:
        """Parse the manifest (skipping unreadable lines)."""
        out: List[ManifestEntry] = []
        try:
            with open(self.manifest_path) as handle:
                for raw in handle:
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        data = json.loads(raw)
                        out.append(
                            ManifestEntry(
                                fingerprint=data.pop("fingerprint"),
                                job=data.pop("job", ""),
                                wall_s=float(data.pop("wall_s", 0.0)),
                                written_at=float(data.pop("written_at", 0.0)),
                                extra=data,
                            )
                        )
                    except Exception:
                        continue
        except OSError:
            return out
        return out

    def size_bytes(self) -> int:
        """Total bytes stored across every salt partition."""
        total = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                try:
                    total += os.path.getsize(os.path.join(dirpath, name))
                except OSError:
                    continue
        return total

    def clear(self) -> None:
        """Wipe the whole cache root (every salt partition)."""
        shutil.rmtree(self.root, ignore_errors=True)
