"""Sweep orchestration: declarative jobs, parallel execution, result cache.

Every evaluation in the paper — Figures 4 to 10 and the MRMM ablation —
is a parameter sweep over independent scenario runs.  This package turns
those hand-rolled loops into declarative :class:`~repro.orchestrator.jobs.SweepJob`
lists executed by :func:`~repro.orchestrator.executor.run_sweep`, which

- fans jobs out across cores (serial or ``ProcessPoolExecutor`` backends),
- memoizes finished runs in a content-addressed on-disk cache keyed by a
  canonical hash of the :class:`~repro.core.config.CoCoAConfig`, and
- reports per-job wall-clock timing, progress/ETA and cache accounting.

Results come back in deterministic job order regardless of completion
order, and parallel execution is bit-identical to serial execution
because every scenario derives all randomness from its own master seed.
"""

from repro.orchestrator.cache import CacheStats, ResultCache
from repro.orchestrator.executor import (
    ProcessPoolBackend,
    SerialBackend,
    SweepExecutionError,
    SweepOutcome,
    run_sweep,
)
from repro.orchestrator.jobs import (
    CODE_VERSION,
    SweepJob,
    config_digest,
    seed_jobs,
)
from repro.orchestrator.progress import (
    JobRecord,
    ProgressListener,
    ProgressPrinter,
    SweepReport,
)

__all__ = [
    "CODE_VERSION",
    "CacheStats",
    "JobRecord",
    "ProcessPoolBackend",
    "ProgressListener",
    "ProgressPrinter",
    "ResultCache",
    "SerialBackend",
    "SweepExecutionError",
    "SweepJob",
    "SweepOutcome",
    "SweepReport",
    "config_digest",
    "run_sweep",
    "seed_jobs",
]
