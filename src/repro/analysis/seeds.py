"""Seed sweeps: one scenario, many random worlds.

:func:`run_seed_sweep` re-runs a :class:`~repro.core.config.CoCoAConfig`
under several master seeds and aggregates the headline metrics.  Because
every stochastic component derives from the master seed, each run is a
fully independent world (topologies, noise, clock drifts, calibration
campaign) while the scenario parameters stay fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import ConfidenceInterval, mean_confidence_interval
from repro.core.config import CoCoAConfig
from repro.experiments.metrics import summarize_errors
from repro.experiments.runner import SharedCalibration
from repro.orchestrator.cache import ResultCache
from repro.orchestrator.executor import run_sweep
from repro.orchestrator.jobs import seed_jobs
from repro.orchestrator.progress import ProgressListener


@dataclass(frozen=True)
class SeedSweepResult:
    """Aggregated metrics over a seed sweep.

    Attributes:
        config: the (seed-less) scenario swept.
        seeds: seeds used.
        error_time_averages_m: per-seed time-average localization error.
        energy_totals_j: per-seed team energy.
        error_ci: confidence interval over the error averages.
        energy_ci: confidence interval over the energy totals.
    """

    config: CoCoAConfig
    seeds: List[int]
    error_time_averages_m: List[float]
    energy_totals_j: List[float]
    error_ci: ConfidenceInterval
    energy_ci: ConfidenceInterval

    @property
    def worst_seed_error_m(self) -> float:
        return max(self.error_time_averages_m)

    @property
    def best_seed_error_m(self) -> float:
        return min(self.error_time_averages_m)

    @property
    def relative_spread(self) -> float:
        """Std/mean of the error metric — the seed-sensitivity measure."""
        values = np.asarray(self.error_time_averages_m)
        # repro: noqa[REP004] exact-zero guard before dividing by the mean
        if values.mean() == 0.0:
            return 0.0
        return float(values.std(ddof=1) / values.mean())


def run_seed_sweep(
    config: CoCoAConfig,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    skip_first_s: Optional[float] = None,
    calibration: Optional[SharedCalibration] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
    telemetry_path: Optional[str] = None,
) -> SeedSweepResult:
    """Run ``config`` under each seed and aggregate the metrics.

    The per-seed runs are independent, so they fan out through
    :func:`~repro.orchestrator.executor.run_sweep`: ``jobs > 1`` executes
    them on a process pool (bit-identical to serial execution) and
    ``cache`` memoizes finished runs on disk.

    Args:
        config: the scenario; its own ``master_seed`` is ignored.
        seeds: master seeds to sweep (at least two).
        skip_first_s: warm-up to exclude from error averaging; defaults
            to just past the first beacon period.
        calibration: optional shared calibration cache (serial path).
        jobs: worker processes (1 = in-process serial execution).
        cache: optional content-addressed result cache.
        progress: optional per-job progress listener.
        telemetry_path: when set, executed jobs run with rich telemetry
            and the per-job snapshots are written to this JSONL path.

    Raises:
        ValueError: with fewer than two seeds.
    """
    if len(seeds) < 2:
        raise ValueError("need at least 2 seeds, got %d" % len(seeds))
    if skip_first_s is None:
        skip_first_s = min(
            1.1 * config.beacon_period_s + 5.0, config.duration_s / 2
        )
    cal = calibration if calibration is not None else SharedCalibration()
    outcome = run_sweep(
        seed_jobs(config, seeds, telemetry=telemetry_path is not None),
        n_jobs=jobs,
        cache=cache,
        progress=progress,
        calibration=cal,
        telemetry_path=telemetry_path,
    )
    errors: List[float] = []
    energies: List[float] = []
    for result in outcome.results:
        summary = summarize_errors(result.errors, skip_first_s=skip_first_s)
        errors.append(summary.time_average_m)
        energies.append(result.total_energy_j())
    return SeedSweepResult(
        config=config,
        seeds=list(seeds),
        error_time_averages_m=errors,
        energy_totals_j=energies,
        error_ci=mean_confidence_interval(errors),
        energy_ci=mean_confidence_interval(energies),
    )


def compare_scenarios(
    a: SeedSweepResult, b: SeedSweepResult
) -> Dict[str, float]:
    """Welch-test the error metric of two sweeps.

    Returns a dict with the mean difference, t statistic and p value —
    the evidence behind "scenario A is more accurate than scenario B".
    """
    from repro.analysis.stats import welch_t_test

    t_stat, p_value = welch_t_test(
        a.error_time_averages_m, b.error_time_averages_m
    )
    return {
        "mean_difference_m": a.error_ci.mean - b.error_ci.mean,
        "t_statistic": t_stat,
        "p_value": p_value,
    }
