"""Statistical analysis across repeated runs.

The paper evaluates single simulation runs (standard for its venue and
era).  This package adds the modern hygiene on top: run a scenario across
several master seeds, aggregate the metrics, and attach confidence
intervals, so claims like "CoCoA beats RF-only" can be checked for seed
sensitivity rather than asserted from one sample path.
"""

from repro.analysis.seeds import SeedSweepResult, run_seed_sweep
from repro.analysis.stats import (
    ConfidenceInterval,
    mean_confidence_interval,
    welch_t_test,
)

__all__ = [
    "run_seed_sweep",
    "SeedSweepResult",
    "ConfidenceInterval",
    "mean_confidence_interval",
    "welch_t_test",
]
