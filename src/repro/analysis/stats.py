"""Small-sample statistics helpers (Student-t based)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with its two-sided confidence interval.

    Attributes:
        mean: sample mean.
        low: lower bound of the interval.
        high: upper bound of the interval.
        confidence: the confidence level (e.g. 0.95).
        n: sample count.
    """

    mean: float
    low: float
    high: float
    confidence: float
    n: int

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return "%.2f +/- %.2f (%.0f%%, n=%d)" % (
            self.mean,
            self.half_width,
            self.confidence * 100.0,
            self.n,
        )


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of ``samples``.

    Raises:
        ValueError: with fewer than two samples (no variance estimate).
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size < 2:
        raise ValueError(
            "need at least 2 samples for an interval, got %d" % values.size
        )
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1), got %r" % confidence)
    mean = float(values.mean())
    sem = float(stats.sem(values))
    # repro: noqa[REP004] sem is exactly 0.0 only for identical samples
    if sem == 0.0:
        return ConfidenceInterval(mean, mean, mean, confidence, values.size)
    half = float(
        sem * stats.t.ppf((1.0 + confidence) / 2.0, values.size - 1)
    )
    return ConfidenceInterval(
        mean, mean - half, mean + half, confidence, values.size
    )


def welch_t_test(
    a: Sequence[float], b: Sequence[float]
) -> Tuple[float, float]:
    """Welch's t-test for a difference of means.

    Returns:
        ``(t_statistic, p_value)`` — small p means the two scenarios'
        metrics genuinely differ rather than being seed noise.
    """
    a_values = np.asarray(list(a), dtype=float)
    b_values = np.asarray(list(b), dtype=float)
    if a_values.size < 2 or b_values.size < 2:
        raise ValueError("need at least 2 samples per group")
    t_stat, p_value = stats.ttest_ind(a_values, b_values, equal_var=False)
    return float(t_stat), float(p_value)
