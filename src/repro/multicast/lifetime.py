"""Link lifetime prediction from robot mobility knowledge.

MRMM's key idea is that robots, unlike generic MANET nodes, *know their own
motion*: the commanded velocity, the time until they reach their current
waypoint, and how long they will rest there (``d_rest``).  Two neighbors
exchanging this knowledge can lower-bound how long their radio link will
survive, and the mesh construction prefers links that live longer.

:func:`predict_link_lifetime` solves the constant-velocity separation
equation |Δp + Δv·τ| = R for the earliest positive τ, then clamps the
prediction to the horizon within which the constant-velocity assumption is
actually valid — the earlier of either robot's next waypoint arrival (after
which its velocity is unknown) plus its rest time (during which it is
stationary, extending validity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.geometry import Vec2


@dataclass(frozen=True)
class Kinematics:
    """A robot's self-knowledge about its current motion.

    Attributes:
        position: current position.
        velocity: current velocity vector (zero while resting).
        time_to_waypoint: seconds until the current movement command
            completes (0 while resting).
        rest_remaining: seconds of rest remaining at the destination —
            the ``d_rest`` knowledge MRMM exploits.
    """

    position: Vec2
    velocity: Vec2
    time_to_waypoint: float
    rest_remaining: float

    @property
    def prediction_horizon(self) -> float:
        """How long this robot's current velocity remains valid."""
        return self.time_to_waypoint + self.rest_remaining


def kinematics_of(mobility, t: float) -> Kinematics:
    """Extract a robot's self-knowledge from its mobility model.

    Works for any :class:`~repro.mobility.base.MobilityModel`; models
    without waypoint structure (e.g. stationary nodes) report a zero
    velocity and an unbounded rest, i.e. "not going anywhere".
    """
    pose = mobility.pose(t)
    velocity = (
        Vec2.from_polar(pose.speed, pose.heading)
        if pose.speed > 0.0
        else Vec2.zero()
    )
    time_to_waypoint = 0.0
    rest_remaining = float("inf")
    if hasattr(mobility, "time_to_waypoint"):
        time_to_waypoint = mobility.time_to_waypoint(t)
        rest_remaining = mobility.rest_remaining(t)
    return Kinematics(
        position=pose.position,
        velocity=velocity,
        time_to_waypoint=time_to_waypoint,
        rest_remaining=rest_remaining,
    )


def predict_link_lifetime(
    a: Kinematics,
    b: Kinematics,
    link_range_m: float,
    max_horizon_s: float = 600.0,
) -> float:
    """Predict how long the link between two robots will survive.

    Args:
        a: first endpoint's kinematics.
        b: second endpoint's kinematics.
        link_range_m: communication range assumed for the link.
        max_horizon_s: cap on any prediction (beyond it the answer is
            "long enough").

    Returns:
        A lower-bound estimate, in seconds, of the remaining link lifetime.
        0.0 if the robots are already out of range.
    """
    if link_range_m <= 0:
        raise ValueError(
            "link_range_m must be positive, got %r" % link_range_m
        )
    dp = b.position - a.position
    if dp.norm() > link_range_m:
        return 0.0
    horizon = min(
        max(a.prediction_horizon, 0.0),
        max(b.prediction_horizon, 0.0),
        max_horizon_s,
    )
    dv = b.velocity - a.velocity
    speed_sq = dv.dot(dv)
    if speed_sq <= 1e-12:
        # Not separating under current commands: valid until a command
        # changes, i.e. for the whole prediction horizon.
        return horizon if horizon > 0.0 else max_horizon_s
    # Solve |dp + dv*tau|^2 = R^2 for the earliest positive tau.
    b_coef = 2.0 * dp.dot(dv)
    c_coef = dp.dot(dp) - link_range_m * link_range_m
    disc = b_coef * b_coef - 4.0 * speed_sq * c_coef
    if disc <= 0.0:
        # Separation never reaches R under current velocities.
        return horizon if horizon > 0.0 else max_horizon_s
    tau = (-b_coef + math.sqrt(disc)) / (2.0 * speed_sq)
    if tau <= 0.0:
        return 0.0
    if horizon > 0.0:
        return min(tau, horizon) if tau < horizon else horizon
    return min(tau, max_horizon_s)
