"""ODMRP — On-Demand Multicast Routing Protocol (Lee et al., WCNC 1999).

The protocol has the two phases the paper describes (§2.3):

**Mesh construction and maintenance.**  The multicast source periodically
floods a JOIN QUERY.  Every node remembers the neighbor it first heard the
query from (its *upstream* toward the source) and rebroadcasts the query
once.  Group members answer with a JOIN REPLY naming their upstream as the
next hop; a node that hears a JOIN REPLY naming *itself* joins the
*forwarding group* (FG) and propagates its own JOIN REPLY toward the
source.  FG membership expires unless refreshed by later rounds.

**Data delivery.**  The source broadcasts data packets; FG nodes rebroadcast
each packet once.  Members deliver the payload up to the application.

This implementation runs on top of the CSMA broadcast MAC; JOIN REPLY
"unicast" follows ODMRP's actual design of broadcasting a packet that names
its intended next hop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

import numpy as np

from repro.multicast.flooding import CopyCounter, DuplicateCache
from repro.multicast.lifetime import Kinematics
from repro.net.interface import NetworkInterface
from repro.net.packet import Packet, ReceivedPacket
from repro.sim.engine import Simulator

#: Wire sizes (bytes) of the control payloads: ids are 4 bytes, counters 4,
#: hop counts 1.  The MRMM JOIN QUERY additionally carries the sender's
#: kinematics (position 16 + velocity 16 + horizon info 16) and the running
#: path-lifetime bound (8).
JOIN_QUERY_BYTES = 13
JOIN_QUERY_MRMM_BYTES = JOIN_QUERY_BYTES + 56
JOIN_REPLY_BYTES = 12

JQ_KIND = "odmrp_jq"
JR_KIND = "odmrp_jr"
DATA_KIND = "odmrp_data"

DataHandler = Callable[[Any, ReceivedPacket], None]


@dataclass(frozen=True)
class JoinQueryPayload:
    """JOIN QUERY contents.

    ``kinematics`` and ``min_path_lifetime`` are only populated by MRMM;
    plain ODMRP leaves them at their defaults.
    """

    source: int
    seq: int
    last_hop: int
    hop_count: int
    kinematics: Optional[Kinematics] = None
    min_path_lifetime: float = float("inf")


@dataclass(frozen=True)
class JoinReplyPayload:
    """JOIN REPLY contents: who wants data from ``source`` via ``next_hop``."""

    source: int
    sender: int
    next_hop: int
    seq: int


@dataclass(frozen=True)
class DataPayload:
    """Application data carried over the mesh."""

    source: int
    seq: int
    body: Any
    body_bytes: int


@dataclass
class MulticastStats:
    """Per-node protocol counters; the harness sums them over the team."""

    jq_originated: int = 0
    jq_forwarded: int = 0
    jr_sent: int = 0
    data_originated: int = 0
    data_forwarded: int = 0
    data_delivered: int = 0
    duplicates_dropped: int = 0
    forwards_suppressed: int = 0
    #: Same-round upstream replacements (only MRMM's link-lifetime
    #: preference ever triggers these; plain ODMRP keeps the first copy).
    route_switches: int = 0


@dataclass(frozen=True)
class OdmrpConfig:
    """Protocol parameters.

    Attributes:
        jq_ttl: hop budget of JOIN QUERY floods.
        data_ttl: hop budget of data packets on the mesh.
        fg_timeout_s: forwarding-group flag lifetime; ODMRP convention is
            about three refresh intervals.
        forward_jitter_s: maximum random delay before rebroadcasting a
            flooded packet (desynchronizes the flood).
        jr_delay_s: how long a member waits after the first JOIN QUERY copy
            before sending its JOIN REPLY — the window in which better
            upstream candidates may still arrive.
        assumed_link_range_m: link range used for lifetime prediction
            (MRMM only).
        suppress_threshold: if set, a node cancels its own scheduled
            rebroadcast of a flooded packet once it has overheard this many
            copies — MRMM's redundancy-preserving pruning.  ``None``
            (plain ODMRP) never suppresses.
    """

    jq_ttl: int = 8
    data_ttl: int = 8
    fg_timeout_s: float = 360.0
    forward_jitter_s: float = 0.15
    jr_delay_s: float = 0.4
    assumed_link_range_m: float = 100.0
    suppress_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.jq_ttl < 1 or self.data_ttl < 1:
            raise ValueError("TTLs must be at least 1")
        if self.fg_timeout_s <= 0:
            raise ValueError(
                "fg_timeout_s must be positive, got %r" % self.fg_timeout_s
            )
        if self.forward_jitter_s < 0 or self.jr_delay_s < 0:
            raise ValueError("jitter/delay must be non-negative")
        if self.suppress_threshold is not None and self.suppress_threshold < 1:
            raise ValueError(
                "suppress_threshold must be positive or None, got %r"
                % self.suppress_threshold
            )
        if self.assumed_link_range_m <= 0:
            raise ValueError(
                "assumed_link_range_m must be positive, got %r"
                % self.assumed_link_range_m
            )


@dataclass
class _RouteEntry:
    """Best-known way back toward a source for the current refresh round."""

    seq: int
    upstream: int
    hop_count: int
    path_lifetime: float
    rssi_dbm: float = 0.0
    jr_scheduled: bool = False
    jr_sent_for_seq: int = -1


class OdmrpNode:
    """One node's ODMRP instance.

    Args:
        sim: simulation engine.
        interface: the node's network attachment.
        rng: random stream for jitter.
        config: protocol parameters.
        is_source: whether this node originates JOIN QUERYs and data.
        is_member: whether this node is a multicast group member.
        kinematics_provider: callable returning this node's own
            :class:`Kinematics` (used by MRMM; optional for plain ODMRP).
    """

    def __init__(
        self,
        sim: Simulator,
        interface: NetworkInterface,
        rng: np.random.Generator,
        config: OdmrpConfig = OdmrpConfig(),
        is_source: bool = False,
        is_member: bool = False,
        kinematics_provider: Optional[Callable[[], Kinematics]] = None,
    ) -> None:
        self._sim = sim
        self._interface = interface
        self._rng = rng
        self._config = config
        self.is_source = is_source
        self.is_member = is_member
        self._kinematics_provider = kinematics_provider
        self._node_id = interface.node_id
        self._jq_seq = 0
        self._data_seq = 0
        self._jq_cache = DuplicateCache()
        self._data_cache = DuplicateCache()
        self._copies = CopyCounter()
        self._routes: Dict[int, _RouteEntry] = {}
        self._fg_expiry: Dict[int, float] = {}
        self._data_handlers: list = []
        self.stats = MulticastStats()
        interface.on_receive(JQ_KIND, self._on_join_query)
        interface.on_receive(JR_KIND, self._on_join_reply)
        interface.on_receive(DATA_KIND, self._on_data)

    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def config(self) -> OdmrpConfig:
        return self._config

    def on_data(self, handler: DataHandler) -> None:
        """Register an application handler for delivered group data."""
        self._data_handlers.append(handler)

    def promote_to_source(self) -> None:
        """Make this node a multicast source (Sync-robot failover).

        The node keeps its membership; it simply gains the right to
        originate JOIN QUERYs and data.
        """
        self.is_source = True

    def demote_from_source(self) -> None:
        """Stop acting as a multicast source (a better Sync robot spoke)."""
        self.is_source = False

    def is_forwarder_for(self, source: int) -> bool:
        """True if this node currently holds an unexpired FG flag."""
        expiry = self._fg_expiry.get(source)
        return expiry is not None and expiry > self._sim.now

    @property
    def forwarding_sources(self) -> Set[int]:
        """Sources for which this node is currently a forwarder."""
        now = self._sim.now
        return {s for s, e in self._fg_expiry.items() if e > now}

    # -- mesh construction -------------------------------------------------

    def send_join_query(self) -> None:
        """Originate a JOIN QUERY flood (source only).

        CoCoA's Sync robot calls this at the start of each beacon period so
        the mesh is refreshed while every radio is awake.

        Raises:
            RuntimeError: if called on a non-source node.
        """
        if not self.is_source:
            raise RuntimeError(
                "node %d is not a multicast source" % self._node_id
            )
        self._jq_seq += 1
        payload = JoinQueryPayload(
            source=self._node_id,
            seq=self._jq_seq,
            last_hop=self._node_id,
            hop_count=0,
            kinematics=self._own_kinematics(),
            min_path_lifetime=float("inf"),
        )
        packet = Packet(
            src=self._node_id,
            kind=JQ_KIND,
            payload=payload,
            payload_bytes=self._jq_bytes(),
            ttl=self._config.jq_ttl,
        )
        self._jq_cache.seen_before(packet.origin_uid)
        self._interface.send_broadcast(packet)
        self.stats.jq_originated += 1

    def _jq_bytes(self) -> int:
        return JOIN_QUERY_BYTES

    def _own_kinematics(self) -> Optional[Kinematics]:
        """Plain ODMRP does not use mobility knowledge."""
        return None

    def _link_lifetime_to(self, sender: Optional[Kinematics]) -> float:
        """Plain ODMRP treats every link as equally long-lived."""
        return float("inf")

    def _candidate_better(
        self, candidate: _RouteEntry, incumbent: _RouteEntry
    ) -> bool:
        """ODMRP keeps the first-heard upstream: later copies never win."""
        return False

    def _on_join_query(self, received: ReceivedPacket) -> None:
        payload: JoinQueryPayload = received.packet.payload
        if payload.source == self._node_id:
            return
        link_lifetime = self._link_lifetime_to(payload.kinematics)
        path_lifetime = min(payload.min_path_lifetime, link_lifetime)
        candidate = _RouteEntry(
            seq=payload.seq,
            upstream=payload.last_hop,
            hop_count=payload.hop_count + 1,
            path_lifetime=path_lifetime,
            rssi_dbm=received.rssi_dbm,
        )
        entry = self._routes.get(payload.source)
        is_new_round = entry is None or entry.seq < payload.seq
        if is_new_round:
            old = entry
            entry = candidate
            if old is not None:
                entry.jr_sent_for_seq = old.jr_sent_for_seq
            self._routes[payload.source] = entry
        elif entry.seq == payload.seq:
            if self._candidate_better(candidate, entry):
                self.stats.route_switches += 1
                entry.upstream = candidate.upstream
                entry.hop_count = candidate.hop_count
                entry.path_lifetime = candidate.path_lifetime
                entry.rssi_dbm = candidate.rssi_dbm
        else:
            return  # stale round

        self._copies.record(received.packet.origin_uid)
        if self._jq_cache.seen_before(received.packet.origin_uid):
            if not is_new_round:
                self.stats.duplicates_dropped += 1
            return

        if received.packet.ttl > 1:
            forwarded = Packet(
                src=self._node_id,
                kind=JQ_KIND,
                payload=JoinQueryPayload(
                    source=payload.source,
                    seq=payload.seq,
                    last_hop=self._node_id,
                    hop_count=payload.hop_count + 1,
                    kinematics=self._own_kinematics(),
                    min_path_lifetime=path_lifetime,
                ),
                payload_bytes=self._jq_bytes(),
                ttl=received.packet.ttl - 1,
                origin_uid=received.packet.origin_uid,
            )
            self._sim.schedule(
                self._jitter(),
                self._fire_forward,
                forwarded,
                True,
                name="jq-forward",
            )

        if self.is_member:
            self._schedule_join_reply(payload.source)

    def _fire_forward(self, packet: Packet, is_jq: bool) -> None:
        """Send a scheduled rebroadcast unless it was pruned meanwhile.

        With ``suppress_threshold`` set (MRMM), the rebroadcast is
        cancelled if the node has overheard enough copies of the same
        packet while the jitter timer ran — its neighborhood is already
        covered with the configured redundancy.
        """
        threshold = self._config.suppress_threshold
        if (
            threshold is not None
            and self._copies.count(packet.origin_uid) >= threshold + 1
        ):
            self.stats.forwards_suppressed += 1
            return
        self._interface.send_broadcast(packet)
        if is_jq:
            self.stats.jq_forwarded += 1
        else:
            self.stats.data_forwarded += 1

    def _schedule_join_reply(self, source: int) -> None:
        entry = self._routes.get(source)
        if entry is None or entry.jr_scheduled:
            return
        entry.jr_scheduled = True
        self._sim.schedule(
            self._config.jr_delay_s + self._jitter(),
            self._send_join_reply,
            source,
            name="jr-send",
        )

    def _send_join_reply(self, source: int) -> None:
        entry = self._routes.get(source)
        if entry is None:
            return
        entry.jr_scheduled = False
        if entry.jr_sent_for_seq >= entry.seq:
            return
        entry.jr_sent_for_seq = entry.seq
        if entry.upstream == self._node_id:
            return
        payload = JoinReplyPayload(
            source=source,
            sender=self._node_id,
            next_hop=entry.upstream,
            seq=entry.seq,
        )
        packet = Packet(
            src=self._node_id,
            kind=JR_KIND,
            payload=payload,
            payload_bytes=JOIN_REPLY_BYTES,
            ttl=1,
        )
        self._interface.send_broadcast(packet)
        self.stats.jr_sent += 1

    def _on_join_reply(self, received: ReceivedPacket) -> None:
        payload: JoinReplyPayload = received.packet.payload
        if payload.next_hop != self._node_id:
            return
        if payload.source == self._node_id:
            return  # the source itself needs no FG flag
        self._fg_expiry[payload.source] = (
            self._sim.now + self._config.fg_timeout_s
        )
        # Propagate membership interest toward the source.
        entry = self._routes.get(payload.source)
        if entry is not None and entry.jr_sent_for_seq < entry.seq:
            self._schedule_join_reply(payload.source)

    # -- data delivery ------------------------------------------------------

    def send_data(self, body: Any, body_bytes: int) -> None:
        """Multicast application data over the mesh (source only).

        Raises:
            RuntimeError: if called on a non-source node.
        """
        if not self.is_source:
            raise RuntimeError(
                "node %d is not a multicast source" % self._node_id
            )
        self._data_seq += 1
        payload = DataPayload(
            source=self._node_id,
            seq=self._data_seq,
            body=body,
            body_bytes=body_bytes,
        )
        packet = Packet(
            src=self._node_id,
            kind=DATA_KIND,
            payload=payload,
            payload_bytes=body_bytes + 8,
            ttl=self._config.data_ttl,
        )
        self._data_cache.seen_before(packet.origin_uid)
        self._interface.send_broadcast(packet)
        self.stats.data_originated += 1

    def _on_data(self, received: ReceivedPacket) -> None:
        payload: DataPayload = received.packet.payload
        if payload.source == self._node_id:
            return
        self._copies.record(received.packet.origin_uid)
        if self._data_cache.seen_before(received.packet.origin_uid):
            self.stats.duplicates_dropped += 1
            return
        if self.is_member:
            self.stats.data_delivered += 1
            for handler in self._data_handlers:
                handler(payload.body, received)
        if (
            self.is_forwarder_for(payload.source)
            and received.packet.ttl > 1
        ):
            self._sim.schedule(
                self._jitter(),
                self._fire_forward,
                received.packet.forwarded_by(self._node_id),
                False,
                name="data-forward",
            )

    def _jitter(self) -> float:
        if self._config.forward_jitter_s <= 0:
            return 0.0
        return float(self._rng.uniform(0.0, self._config.forward_jitter_s))
