"""Graph views of connectivity and the multicast mesh.

These helpers build :mod:`networkx` graphs from simulation state.  They are
*analysis* tools — protocols never read them — used by tests (is the mesh
connected from the source to every member?) and by the MRMM-vs-ODMRP
ablation benchmark (mesh size, path lengths, redundancy).
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

import networkx as nx

from repro.util.geometry import Vec2


def connectivity_graph(
    positions: Dict[int, Vec2], link_range_m: float
) -> nx.Graph:
    """Unit-disk connectivity graph over node positions.

    Args:
        positions: node id -> position.
        link_range_m: maximum link distance.

    Returns:
        An undirected graph with one node per robot and an edge between
        every pair within range, annotated with the pair distance.
    """
    if link_range_m <= 0:
        raise ValueError(
            "link_range_m must be positive, got %r" % link_range_m
        )
    graph = nx.Graph()
    graph.add_nodes_from(positions)
    ids = sorted(positions)
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            d = positions[a].distance_to(positions[b])
            if d <= link_range_m:
                graph.add_edge(a, b, distance=d)
    return graph


def mesh_graph(
    positions: Dict[int, Vec2],
    link_range_m: float,
    forwarders: Set[int],
    source: int,
    members: Iterable[int],
) -> nx.Graph:
    """Subgraph of connectivity induced by the mesh participants.

    The mesh consists of the source, the current forwarding group and the
    group members; data flows over connectivity edges among them.
    """
    participants = set(forwarders) | {source} | set(members)
    mesh_positions = {
        node: pos for node, pos in positions.items() if node in participants
    }
    return connectivity_graph(mesh_positions, link_range_m)


def mesh_reaches_all_members(
    graph: nx.Graph, source: int, members: Iterable[int]
) -> bool:
    """True if every member is reachable from the source in the mesh graph."""
    if source not in graph:
        return False
    reachable = nx.node_connected_component(graph, source)
    return all(member in reachable for member in members)
