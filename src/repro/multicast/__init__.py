"""Multicast substrate: ODMRP and its robot-aware extension MRMM.

CoCoA distributes SYNC messages over MRMM (Mobile Robot Mesh Multicast,
Das et al., ICRA 2005), an extension of ODMRP (On-Demand Multicast Routing
Protocol, Lee et al., WCNC 1999).  Both build a *mesh* of forwarding nodes
with periodic JOIN QUERY floods answered by JOIN REPLY packets; data is
broadcast along the mesh.  MRMM additionally exploits the mobility knowledge
robots have about themselves — current velocity, time to the next waypoint,
and rest time ``d_rest`` — to predict link lifetimes and select a sparser,
longer-lived mesh (the pruning step, §2.3 of the CoCoA paper).
"""

from repro.multicast.lifetime import (
    Kinematics,
    kinematics_of,
    predict_link_lifetime,
)
from repro.multicast.flooding import DuplicateCache
from repro.multicast.mesh import connectivity_graph, mesh_graph
from repro.multicast.odmrp import (
    MulticastStats,
    OdmrpConfig,
    OdmrpNode,
)
from repro.multicast.mrmm import MrmmConfig, MrmmNode

__all__ = [
    "Kinematics",
    "kinematics_of",
    "predict_link_lifetime",
    "DuplicateCache",
    "OdmrpConfig",
    "OdmrpNode",
    "MulticastStats",
    "MrmmConfig",
    "MrmmNode",
    "connectivity_graph",
    "mesh_graph",
]
