"""MRMM — Mobile Robot Mesh Multicast (Das et al., ICRA 2005).

MRMM extends ODMRP with the mobility knowledge available in robot networks:
each robot knows its own commanded velocity, its time to the next waypoint,
and its rest time ``d_rest``.  The CoCoA paper summarizes the extension as a
*mesh pruning* algorithm: from the set ``F`` of candidate forwarders the
protocol selects ``P ⊆ F`` "that maximizes the lifetime of the mesh without
greatly affecting the redundancy and path lengths", so fewer rebroadcasts
are needed and data travels over a sparser mesh.

The pruning is realized in two concrete mechanisms:

1. **Lifetime-aware upstream selection.**  JOIN QUERY packets carry the
   sender's kinematics and the minimum predicted link lifetime along the
   path so far.  A node hearing multiple copies of the same query keeps the
   upstream that maximizes the path-lifetime bound (hop count breaks ties,
   then the lower node id).  Plain ODMRP keeps whichever copy won the race.

2. **Deterministic parent coalescing.**  The id tie-break makes nearby
   members choose the *same* parent instead of scattering their JOIN
   REPLYs across whoever happened to transmit first, so the forwarding
   group — the pruned set ``P`` — is smaller and more stable between
   refreshes.

The practical effects the ablation benchmark measures — smaller forwarding
group, fewer data transmissions per delivered packet, longer-lived mesh —
are exactly the improvements the CoCoA paper attributes to MRMM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.multicast.lifetime import Kinematics, predict_link_lifetime
from repro.multicast.odmrp import (
    JOIN_QUERY_MRMM_BYTES,
    OdmrpConfig,
    OdmrpNode,
    _RouteEntry,
)


@dataclass(frozen=True)
class MrmmConfig(OdmrpConfig):
    """MRMM parameters.

    Attributes:
        max_lifetime_horizon_s: cap on link-lifetime predictions.
        reliable_rssi_dbm: links heard at or above this strength count as
            *reliable*; parent selection prefers reliable links outright,
            pruning the flaky long-distance links that win ODMRP's
            first-copy race but drop data later.
    """

    max_lifetime_horizon_s: float = 600.0
    reliable_rssi_dbm: float = -85.0
    suppress_threshold: Optional[int] = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_lifetime_horizon_s <= 0:
            raise ValueError(
                "max_lifetime_horizon_s must be positive, got %r"
                % self.max_lifetime_horizon_s
            )


class MrmmNode(OdmrpNode):
    """An ODMRP node with MRMM's mobility-aware mesh pruning.

    Requires a ``kinematics_provider`` so the node can advertise its own
    motion in forwarded JOIN QUERYs and evaluate link lifetimes to
    neighbors.
    """

    def _jq_bytes(self) -> int:
        return JOIN_QUERY_MRMM_BYTES

    def _own_kinematics(self) -> Optional[Kinematics]:
        if self._kinematics_provider is None:
            return None
        return self._kinematics_provider()

    def _link_lifetime_to(self, sender: Optional[Kinematics]) -> float:
        """Predicted lifetime of the link to the JQ's last hop."""
        own = self._own_kinematics()
        if own is None or sender is None:
            return float("inf")
        config = self._config
        horizon = getattr(config, "max_lifetime_horizon_s", 600.0)
        return predict_link_lifetime(
            own, sender, config.assumed_link_range_m, horizon
        )

    def _candidate_better(
        self, candidate: _RouteEntry, incumbent: _RouteEntry
    ) -> bool:
        """Prefer reliable links, then longer-lived paths, then shorter
        paths, then the lower parent id.

        The reliability class prunes flaky long-range links; the lifetime
        metric is the mobility-knowledge pruning of the MRMM paper; and the
        final deterministic tie-break coalesces members onto shared
        parents, shrinking the forwarding group.
        """
        threshold = getattr(self._config, "reliable_rssi_dbm", -85.0)
        cand_reliable = candidate.rssi_dbm >= threshold
        inc_reliable = incumbent.rssi_dbm >= threshold
        if cand_reliable != inc_reliable:
            return cand_reliable
        if candidate.path_lifetime != incumbent.path_lifetime:
            return candidate.path_lifetime > incumbent.path_lifetime
        if candidate.hop_count != incumbent.hop_count:
            return candidate.hop_count < incumbent.hop_count
        return candidate.upstream < incumbent.upstream
