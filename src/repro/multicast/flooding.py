"""Duplicate suppression for flooded packets.

Every flooding-based protocol (JOIN QUERY dissemination, mesh data
delivery) must rebroadcast each logical packet at most once per node.
:class:`DuplicateCache` remembers recently seen origin ids with a bounded
memory footprint.
"""

from __future__ import annotations

from collections import OrderedDict


class DuplicateCache:
    """A bounded set of recently seen packet origin ids.

    Maintains insertion order and evicts the oldest entries beyond
    ``capacity`` — with protocol traffic rates this comfortably outlives
    any packet still in flight.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive, got %r" % capacity)
        self._capacity = capacity
        self._seen: "OrderedDict[int, None]" = OrderedDict()

    def seen_before(self, origin_uid: int) -> bool:
        """Record ``origin_uid``; return True if it was already known."""
        if origin_uid in self._seen:
            return True
        self._seen[origin_uid] = None
        if len(self._seen) > self._capacity:
            self._seen.popitem(last=False)
        return False

    def __contains__(self, origin_uid: int) -> bool:
        return origin_uid in self._seen

    def __len__(self) -> int:
        return len(self._seen)


class CopyCounter:
    """Counts how many copies of each flooded packet a node has heard.

    Backs counter-based rebroadcast suppression (MRMM's redundancy-aware
    pruning): a node that already heard several copies of a packet knows
    its neighborhood is covered and cancels its own rebroadcast.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive, got %r" % capacity)
        self._capacity = capacity
        self._counts: "OrderedDict[int, int]" = OrderedDict()

    def record(self, origin_uid: int) -> int:
        """Record one more heard copy; return the updated count."""
        count = self._counts.pop(origin_uid, 0) + 1
        self._counts[origin_uid] = count
        if len(self._counts) > self._capacity:
            self._counts.popitem(last=False)
        return count

    def count(self, origin_uid: int) -> int:
        """Copies heard so far (0 if unknown or evicted)."""
        return self._counts.get(origin_uid, 0)
